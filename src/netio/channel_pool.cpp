#include "netio/channel_pool.hpp"

#include "obs/registry.hpp"

namespace baps::netio {

namespace {

struct PoolCounters {
  obs::Counter& reuse;
  obs::Counter& dial;
  obs::Counter& discard;

  static PoolCounters& get() {
    auto& reg = obs::Registry::global();
    static PoolCounters c{
        reg.counter("netio_pool_reuse_total"),
        reg.counter("netio_pool_dial_total"),
        reg.counter("netio_pool_discard_total"),
    };
    return c;
  }
};

}  // namespace

ChannelPool::Acquired ChannelPool::acquire(const std::string& host,
                                           std::uint16_t port, NetError* err) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = idle_.find(key_of(host, port));
    if (it != idle_.end() && !it->second.empty()) {
      // LIFO: the most recently parked socket is the least likely to have
      // been idle-closed by the far end.
      auto channel = std::move(it->second.back());
      it->second.pop_back();
      PoolCounters::get().reuse.inc();
      return Acquired{std::move(channel), /*reused=*/true};
    }
  }
  auto conn = TcpConnection::connect(host, port,
                                     params_.deadlines.connect_ms, err);
  if (!conn.has_value()) return Acquired{};
  PoolCounters::get().dial.inc();
  return Acquired{std::make_unique<FrameChannel>(std::move(*conn),
                                                 params_.deadlines,
                                                 params_.max_frame_payload),
                  /*reused=*/false};
}

void ChannelPool::release(const std::string& host, std::uint16_t port,
                          std::unique_ptr<FrameChannel> channel) {
  if (channel == nullptr || !channel->valid()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto& bucket = idle_[key_of(host, port)];
  if (bucket.size() >= params_.max_idle_per_target) {
    PoolCounters::get().discard.inc();
    return;  // channel closes on destruction
  }
  bucket.push_back(std::move(channel));
}

void ChannelPool::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  idle_.clear();
}

std::size_t ChannelPool::idle_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, bucket] : idle_) n += bucket.size();
  return n;
}

}  // namespace baps::netio
