// Framed message I/O over one TCP connection: wire frames in, wire frames
// out, with per-operation deadlines and full obs instrumentation —
// `wire_frames_total{kind,dir}`, `wire_bytes_total{dir}`, decode-error and
// timeout counters. A frame that fails validation (bad magic/CRC/size) is a
// hard error: the caller is expected to drop the connection, which is
// exactly how tampered traffic is contained.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netio/socket.hpp"
#include "obs/span.hpp"
#include "wire/frame.hpp"
#include "wire/messages.hpp"

namespace baps::netio {

class FrameChannel {
 public:
  FrameChannel(TcpConnection conn, Deadlines deadlines,
               std::uint64_t max_payload = wire::kDefaultMaxPayload)
      : conn_(std::move(conn)),
        deadlines_(deadlines),
        max_payload_(max_payload) {}

  bool valid() const { return conn_.valid(); }
  TcpConnection& connection() { return conn_; }
  const Deadlines& deadlines() const { return deadlines_; }

  /// Attaches a tracer: sampled frames crossing this channel get
  /// frame_send / frame_recv spans. nullptr (the default) costs nothing on
  /// either path.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Sends one frame within the write deadline. The overload taking a
  /// TraceContext embeds it in the frame (invalid contexts degrade to the
  /// plain encoding) and records a frame_send span when sampled.
  bool send(wire::FrameKind kind, std::string_view payload, NetError* err);
  bool send(wire::FrameKind kind, std::string_view payload,
            const obs::TraceContext& trace, NetError* err);

  /// Receives one frame within `timeout_ms` (default: the read deadline).
  /// Frame-validation failures surface as NetStatus::kError with the decode
  /// status in the message, after bumping `wire_decode_errors_total{reason}`.
  /// A received frame carrying a sampled trace context gets a frame_recv
  /// span (when a tracer is attached) parented to the sender's span.
  std::optional<wire::Frame> recv(NetError* err);
  std::optional<wire::Frame> recv(int timeout_ms, NetError* err);

  /// Encode + send a typed message, optionally with a trace context.
  template <typename Msg>
  bool send_msg(const Msg& m, NetError* err) {
    return send(Msg::kKind, wire::encode(m), err);
  }
  template <typename Msg>
  bool send_msg(const Msg& m, const obs::TraceContext& trace, NetError* err) {
    return send(Msg::kKind, wire::encode(m), trace, err);
  }

  /// Receives one frame and decodes it as Msg; wrong kind or undecodable
  /// payload is a protocol error.
  template <typename Msg>
  std::optional<Msg> recv_msg(NetError* err) {
    const auto frame = recv(err);
    if (!frame.has_value()) return std::nullopt;
    if (frame->kind != Msg::kKind) {
      if (err != nullptr) {
        err->status = NetStatus::kError;
        err->message = "unexpected frame kind " +
                       wire::frame_kind_name(frame->kind) + ", wanted " +
                       wire::frame_kind_name(Msg::kKind);
      }
      return std::nullopt;
    }
    Msg out;
    if (!wire::decode(frame->payload, &out)) {
      if (err != nullptr) {
        err->status = NetStatus::kError;
        err->message =
            "undecodable " + wire::frame_kind_name(Msg::kKind) + " payload";
      }
      return std::nullopt;
    }
    return out;
  }

  void shutdown_both() { conn_.shutdown_both(); }
  void close() { conn_.close(); }

 private:
  TcpConnection conn_;
  Deadlines deadlines_;
  std::uint64_t max_payload_;
  obs::Tracer* tracer_ = nullptr;  ///< optional, not owned
};

}  // namespace baps::netio
