// Framed message I/O over one TCP connection: wire frames in, wire frames
// out, with per-operation deadlines and full obs instrumentation —
// `wire_frames_total{kind,dir}`, `wire_bytes_total{dir}`, decode-error and
// timeout counters. A frame that fails validation (bad magic/CRC/size) is a
// hard error: the caller is expected to drop the connection, which is
// exactly how tampered traffic is contained.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netio/socket.hpp"
#include "wire/frame.hpp"
#include "wire/messages.hpp"

namespace baps::netio {

class FrameChannel {
 public:
  FrameChannel(TcpConnection conn, Deadlines deadlines,
               std::uint64_t max_payload = wire::kDefaultMaxPayload)
      : conn_(std::move(conn)),
        deadlines_(deadlines),
        max_payload_(max_payload) {}

  bool valid() const { return conn_.valid(); }
  TcpConnection& connection() { return conn_; }
  const Deadlines& deadlines() const { return deadlines_; }

  /// Sends one frame within the write deadline.
  bool send(wire::FrameKind kind, std::string_view payload, NetError* err);

  /// Receives one frame within `timeout_ms` (default: the read deadline).
  /// Frame-validation failures surface as NetStatus::kError with the decode
  /// status in the message, after bumping `wire_decode_errors_total{reason}`.
  std::optional<wire::Frame> recv(NetError* err);
  std::optional<wire::Frame> recv(int timeout_ms, NetError* err);

  /// Encode + send a typed message.
  template <typename Msg>
  bool send_msg(const Msg& m, NetError* err) {
    return send(Msg::kKind, wire::encode(m), err);
  }

  /// Receives one frame and decodes it as Msg; wrong kind or undecodable
  /// payload is a protocol error.
  template <typename Msg>
  std::optional<Msg> recv_msg(NetError* err) {
    const auto frame = recv(err);
    if (!frame.has_value()) return std::nullopt;
    if (frame->kind != Msg::kKind) {
      if (err != nullptr) {
        err->status = NetStatus::kError;
        err->message = "unexpected frame kind " +
                       wire::frame_kind_name(frame->kind) + ", wanted " +
                       wire::frame_kind_name(Msg::kKind);
      }
      return std::nullopt;
    }
    Msg out;
    if (!wire::decode(frame->payload, &out)) {
      if (err != nullptr) {
        err->status = NetStatus::kError;
        err->message =
            "undecodable " + wire::frame_kind_name(Msg::kKind) + " payload";
      }
      return std::nullopt;
    }
    return out;
  }

  void shutdown_both() { conn_.shutdown_both(); }
  void close() { conn_.close(); }

 private:
  TcpConnection conn_;
  Deadlines deadlines_;
  std::uint64_t max_payload_;
};

}  // namespace baps::netio
