#include "netio/epoll_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "netio/netio_metrics.hpp"
#include "obs/proc_stats.hpp"
#include "obs/registry.hpp"
#include "util/assert.hpp"

namespace baps::netio {

namespace {

// epoll_event.data.u64 sentinels; connection ids start at 1.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kWakeTag = ~std::uint64_t{0};

// How long EMFILE/ENFILE (or the max_connections ceiling) parks accepting
// before retrying. Short enough to recover promptly, long enough that a
// stuck fd table does not spin a core.
constexpr std::uint64_t kAcceptParkMs = 50;

struct EpollCounters {
  obs::Counter& wakeups;
  obs::Counter& accept_errors;
  obs::Counter& accept_backpressure;
  obs::Counter& writeq_stalls;
  obs::Counter& idle_closes;
  obs::Counter& drained;
  obs::Counter& connections_total;
  obs::Gauge& connections_active;

  static EpollCounters& get() {
    auto& reg = obs::Registry::global();
    static EpollCounters c{
        reg.counter("netio_epoll_wakeups_total"),
        reg.counter("netio_accept_errors_total"),
        reg.counter("netio_epoll_accept_backpressure_total"),
        reg.counter("netio_epoll_writeq_stall_total"),
        reg.counter("netio_epoll_idle_closes_total"),
        reg.counter("netio_epoll_drained_total"),
        reg.counter("netio_connections_total"),
        reg.gauge("netio_connections_active"),
    };
    return c;
  }
};

}  // namespace

// --- Connection -----------------------------------------------------------

bool EpollFrameServer::Connection::send(wire::FrameKind kind,
                                        std::string_view payload) {
  return send(kind, payload, obs::TraceContext{});
}

bool EpollFrameServer::Connection::send(wire::FrameKind kind,
                                        std::string_view payload,
                                        const obs::TraceContext& trace) {
  if (closed_) return false;
  const bool traced = server_->params_.tracer != nullptr && trace.valid() &&
                      trace.sampled;
  OutFrame out;
  out.kind = kind;
  out.traced = traced;
  out.trace = trace;
  out.t0 = traced ? obs::monotonic_ns() : 0;
  // Same encoding rule as FrameChannel::send: unsampled contexts stay off
  // the wire so untraced frames are byte-identical across transports.
  out.bytes = (trace.valid() && trace.sampled)
                  ? wire::encode_frame(kind, payload, trace)
                  : wire::encode_frame(kind, payload);
  const std::size_t size = out.bytes.size();
  // Accounted at enqueue, not at flush completion: this is the epoll
  // equivalent of FrameChannel::send counting before write_all. Once the
  // peer can observe the frame the counter already includes it, so the two
  // transports stay bit-identical under snapshots taken downstream of a
  // reply.
  count_wire_frame(kind, "tx", size);
  wq_.push_back(std::move(out));
  wq_bytes_ += size;
  if (!paused_ && wq_bytes_ > server_->params_.max_write_queue_bytes) {
    // Backpressure: a peer that won't read its responses stops being read
    // from, instead of growing our queue without bound.
    paused_ = true;
    EpollCounters::get().writeq_stalls.inc();
  }
  server_->flush_writes(*this);
  return !closed_;
}

void EpollFrameServer::Connection::close_after_flush() {
  if (closed_) return;
  close_after_flush_ = true;
  if (wq_.empty()) server_->close_conn(*this);
}

// --- EpollFrameServer -----------------------------------------------------

EpollFrameServer::EpollFrameServer(Params params, FrameHandler handler)
    : params_(std::move(params)), handler_(std::move(handler)) {
  BAPS_REQUIRE(handler_ != nullptr, "EpollFrameServer needs a handler");
}

EpollFrameServer::~EpollFrameServer() { stop(); }

std::uint64_t EpollFrameServer::now_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

bool EpollFrameServer::start(std::string* error) {
  BAPS_REQUIRE(!running_.load(), "server already started");
  NetError err;
  auto listener =
      TcpListener::listen(params_.host, params_.port, params_.backlog, &err);
  if (!listener.has_value()) {
    if (error != nullptr) *error = err.message;
    return false;
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    if (error != nullptr) *error = std::string("epoll_create1: ") +
                                   std::strerror(errno);
    return false;
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    if (error != nullptr) *error = std::string("eventfd: ") +
                                   std::strerror(errno);
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return false;
  }
  listener_ = std::move(*listener);
  port_ = listener_.port();
  epoch_ = std::chrono::steady_clock::now();

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kListenerTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev);
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  register_netio_metric_families();
  stop_requested_.store(false);
  draining_ = false;
  running_.store(true);
  loop_thread_ = std::thread([this] { loop(); });
  return true;
}

void EpollFrameServer::stop() {
  if (!running_.exchange(false)) return;
  stop_requested_.store(true);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t rc =
      ::write(wake_fd_, &one, sizeof(one));
  if (loop_thread_.joinable()) loop_thread_.join();
  conns_.clear();
  dead_.clear();
  listener_.close();
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

void EpollFrameServer::begin_drain(std::uint64_t now) {
  if (draining_) return;
  draining_ = true;
  drain_deadline_ms_ = now + static_cast<std::uint64_t>(
                                 std::max(0, params_.drain_timeout_ms));
  // Accepting ends immediately; the listener fd stays in the epoll set but
  // readiness on it is ignored from here on.
  // Sessions with nothing queued end now; the rest get the drain budget.
  for (auto& [id, conn] : conns_) {
    Connection& c = *conn;
    if (c.closed_) continue;
    c.close_after_flush_ = true;
    if (c.wq_.empty()) close_conn(c);
  }
  reap_dead();
}

void EpollFrameServer::loop() {
  const obs::ScopedThreadCpu cpu("netio_epoll");
  auto& counters = EpollCounters::get();
  std::vector<epoll_event> events(256);
  std::vector<std::uint64_t> expired;
  for (;;) {
    // Poll budget: the nearest of timer tick, accept-retry, drain deadline.
    int timeout = timers_.poll_budget_ms();
    const std::uint64_t now_before = now_ms();
    if (accept_parked_) {
      const std::uint64_t wait = accept_retry_at_ms_ > now_before
                                     ? accept_retry_at_ms_ - now_before
                                     : 0;
      const int w = static_cast<int>(std::min<std::uint64_t>(wait, 1000));
      timeout = timeout < 0 ? w : std::min(timeout, w);
    }
    if (draining_) {
      if (conns_.empty()) break;
      const std::uint64_t wait = drain_deadline_ms_ > now_before
                                     ? drain_deadline_ms_ - now_before
                                     : 0;
      const int w = static_cast<int>(std::min<std::uint64_t>(wait, 1000));
      timeout = timeout < 0 ? w : std::min(timeout, w);
    }
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout);
    if (n < 0 && errno != EINTR) break;
    counters.wakeups.inc();
    const std::uint64_t now = now_ms();

    for (std::size_t i = 0; i < static_cast<std::size_t>(std::max(n, 0));
         ++i) {
      const std::uint64_t tag = events[i].data.u64;
      const std::uint32_t evs = events[i].events;
      if (tag == kWakeTag) {
        std::uint64_t buf = 0;
        while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (tag == kListenerTag) {
        if (!draining_) accept_drain(now);
        continue;
      }
      const auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Connection& c = *it->second;
      if (c.closed_) continue;
      if ((evs & EPOLLOUT) != 0) flush_writes(c);
      if (!c.closed_ &&
          (evs & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0) {
        read_drain(c, now);
      }
    }

    if (stop_requested_.load() && !draining_) begin_drain(now);

    if (accept_parked_ && !draining_ && now >= accept_retry_at_ms_) {
      accept_parked_ = false;
      accept_drain(now);
    }

    expired.clear();
    timers_.advance(now, &expired);
    for (const std::uint64_t id : expired) {
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Connection& c = *it->second;
      if (c.closed_ || params_.idle_timeout_ms <= 0) continue;
      const std::uint64_t budget =
          static_cast<std::uint64_t>(params_.idle_timeout_ms);
      if (now - c.last_activity_ms >= budget) {
        counters.idle_closes.inc();
        close_conn(c);
      } else {
        // Activity since arming: re-arm for the remaining quiet budget.
        timers_.arm(id, now, c.last_activity_ms + budget - now);
      }
    }

    if (draining_) {
      if (conns_.size() == dead_.size() || now >= drain_deadline_ms_) {
        for (auto& [id, conn] : conns_) {
          if (!conn->closed_) {
            counters.drained.inc();
            close_conn(*conn);
          }
        }
        reap_dead();
        break;
      }
    }
    reap_dead();
  }
  reap_dead();
}

void EpollFrameServer::reap_dead() {
  for (const std::uint64_t id : dead_) conns_.erase(id);
  dead_.clear();
}

void EpollFrameServer::accept_drain(std::uint64_t now) {
  auto& counters = EpollCounters::get();
  for (;;) {
    if (params_.max_connections != 0 &&
        conns_.size() - dead_.size() >= params_.max_connections) {
      counters.accept_backpressure.inc();
      accept_parked_ = true;
      accept_retry_at_ms_ = now + kAcceptParkMs;
      return;
    }
    const int fd = ::accept4(listener_.fd(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Out of fds: park accepting behind a retry timer. The ET edge is
        // consumed, so accept_parked_ (not epoll) schedules the retry.
        counters.accept_backpressure.inc();
        counters.accept_errors.inc();
        accept_parked_ = true;
        accept_retry_at_ms_ = now + kAcceptParkMs;
        return;
      }
      counters.accept_errors.inc();
      accept_parked_ = true;  // unknown error: retry later, don't spin
      accept_retry_at_ms_ = now + kAcceptParkMs;
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    Connection& c = *conn;
    c.server_ = this;
    c.fd_ = fd;
    c.id_ = next_id_++;
    c.last_activity_ms = now;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
    ev.data.u64 = c.id_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      counters.accept_errors.inc();
      ::close(fd);
      continue;
    }
    conns_.emplace(c.id_, std::move(conn));
    connections_active_.store(conns_.size() - dead_.size());
    counters.connections_total.inc();
    counters.connections_active.set(
        static_cast<double>(conns_.size() - dead_.size()));
    if (params_.idle_timeout_ms > 0) {
      timers_.arm(c.id_, now,
                  static_cast<std::uint64_t>(params_.idle_timeout_ms));
    }
    // New sockets start readable-empty; data arriving later edges EPOLLIN.
  }
}

void EpollFrameServer::read_drain(Connection& c, std::uint64_t now) {
  if (c.paused_) {
    // Backpressured: leave bytes in the kernel. ET won't re-edge for data
    // already queued, so remember to resume reading on unpause.
    c.read_pending_ = true;
    return;
  }
  char buf[64 * 1024];
  for (;;) {
    const ssize_t rc = ::recv(c.fd_, buf, sizeof(buf), 0);
    if (rc > 0) {
      c.rbuf_.append(buf, static_cast<std::size_t>(rc));
      c.last_activity_ms = now;
      // Decode eagerly between reads so one huge burst doesn't accumulate
      // an entire edge's bytes before any frame is handled.
      process_frames(c, now);
      if (c.closed_ || c.paused_) {
        c.read_pending_ = c.paused_;
        return;
      }
      continue;
    }
    if (rc == 0) {
      c.peer_eof_ = true;
      // Orderly EOF: whatever is queued still flushes, then the fd closes.
      // A partial frame left in rbuf_ is a truncated stream — drop it; the
      // blocking path surfaces the same as read-kClosed mid-frame.
      c.close_after_flush();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_conn(c);  // ECONNRESET and friends
    return;
  }
}

void EpollFrameServer::process_frames(Connection& c, std::uint64_t now) {
  auto& counters = EpollCounters::get();
  while (!c.closed_ && !c.paused_) {
    const std::string_view view(c.rbuf_.data() + c.rbuf_off_,
                                c.rbuf_.size() - c.rbuf_off_);
    if (view.empty()) break;
    const bool may_trace =
        params_.tracer != nullptr && params_.tracer->enabled();
    const std::uint64_t t0 = may_trace ? obs::monotonic_ns() : 0;
    wire::DecodeResult r = wire::decode_frame(view, params_.max_frame_payload);
    if (r.status == wire::DecodeStatus::kNeedMore) break;
    if (r.status != wire::DecodeStatus::kOk) {
      count_decode_error(wire::decode_status_name(r.status));
      close_conn(c);
      return;
    }
    count_wire_frame(r.frame.kind, "rx", r.consumed);
    c.rbuf_off_ += r.consumed;
    c.last_activity_ms = now;
    if (may_trace && r.frame.trace.sampled) {
      params_.tracer->record_span(obs::SpanKind::kFrameRecv, r.frame.trace,
                                  t0, obs::monotonic_ns());
    }
    if (!handler_(c, std::move(r.frame))) {
      c.close_after_flush();
      break;
    }
    (void)counters;
  }
  // Reclaim the consumed prefix once it dominates the buffer; amortized
  // O(1) per byte.
  if (c.rbuf_off_ > 4096 && c.rbuf_off_ * 2 >= c.rbuf_.size()) {
    c.rbuf_.erase(0, c.rbuf_off_);
    c.rbuf_off_ = 0;
  }
}

void EpollFrameServer::flush_writes(Connection& c) {
  if (c.closed_) return;
  auto& counters = EpollCounters::get();
  while (!c.wq_.empty()) {
    Connection::OutFrame& f = c.wq_.front();
    const ssize_t rc = ::send(c.fd_, f.bytes.data() + f.off,
                              f.bytes.size() - f.off, MSG_NOSIGNAL);
    if (rc > 0) {
      f.off += static_cast<std::size_t>(rc);
      c.wq_bytes_ -= static_cast<std::size_t>(rc);
      if (f.off == f.bytes.size()) {
        // Counted at enqueue (Connection::send); only the span timing waits
        // for the actual flush.
        if (f.traced && params_.tracer != nullptr) {
          params_.tracer->record_span(obs::SpanKind::kFrameSend, f.trace,
                                      f.t0, obs::monotonic_ns());
        }
        c.wq_.pop_front();
      }
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (rc < 0 && errno == EINTR) continue;
    close_conn(c);  // EPIPE / ECONNRESET: peer is gone, queue is garbage
    return;
  }
  if (c.wq_.empty() && c.close_after_flush_) {
    close_conn(c);
    return;
  }
  if (c.paused_ && c.wq_bytes_ <= params_.max_write_queue_bytes / 2) {
    c.paused_ = false;
    process_frames(c, now_ms());
    if (!c.closed_ && !c.paused_ && c.read_pending_) {
      c.read_pending_ = false;
      read_drain(c, now_ms());
    }
  }
  (void)counters;
}

void EpollFrameServer::close_conn(Connection& c) {
  if (c.closed_) return;
  c.closed_ = true;
  timers_.cancel(c.id_);
  if (c.fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd_, nullptr);
    ::close(c.fd_);
    c.fd_ = -1;
  }
  dead_.push_back(c.id_);
  sessions_handled_.fetch_add(1);
  const std::size_t active = conns_.size() - dead_.size();
  connections_active_.store(active);
  EpollCounters::get().connections_active.set(static_cast<double>(active));
  if (accept_parked_ && params_.max_connections != 0) {
    // A slot freed below the ceiling: retry accepting on the next loop pass.
    accept_retry_at_ms_ = 0;
  }
}

}  // namespace baps::netio
