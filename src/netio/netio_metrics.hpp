// Shared wire/netio metric accounting used by BOTH frame transports — the
// blocking FrameChannel and the epoll event loop. Keeping the counting in
// one place is what makes the epoll↔blocking differential meaningful: the
// two paths must bump the exact same families with the exact same labels,
// so a run over the same trace yields bit-identical counter snapshots.
#pragma once

#include <cstddef>
#include <string>

#include "obs/registry.hpp"
#include "wire/frame.hpp"

namespace baps::netio {

/// One frame crossed the wire: bumps wire_frames_total{kind,dir} and
/// wire_bytes_total{dir}. `dir` is "tx" or "rx"; `bytes` is the full
/// encoded frame size (header + payload).
void count_wire_frame(wire::FrameKind kind, const char* dir,
                      std::size_t bytes);

/// A deadline expired mid-operation: bumps netio_timeouts_total{op}
/// ("read" / "write").
void count_netio_timeout(const char* op);

/// An inbound byte stream failed frame validation: bumps
/// wire_decode_errors_total{reason} with the decode_status_name reason.
void count_decode_error(const std::string& reason);

/// Eagerly registers the netio/epoll metric families so reports always
/// export them (as zeros when idle) and report_check can assert presence:
///   netio_connections_active        gauge  — open sessions right now
///   netio_connections_total         counter — sessions ever accepted
///   netio_accept_errors_total       counter — accept() failures
///   netio_epoll_wakeups_total       counter — epoll_wait returns
///   netio_epoll_accept_backpressure_total — EMFILE/ENFILE pauses
///   netio_epoll_writeq_stall_total  counter — bounded write queue full
///   netio_epoll_idle_closes_total   counter — timer-wheel idle expiries
///   netio_epoll_drained_total       counter — sessions closed by drain
///   netio_pool_reuse_total          counter — pooled channel reuses
///   netio_pool_dial_total           counter — fresh dials by the pool
///   netio_pool_discard_total        counter — releases past the idle cap
void register_netio_metric_families(
    obs::Registry* registry = &obs::Registry::global());

}  // namespace baps::netio
