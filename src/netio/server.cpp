#include "netio/server.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>

#include "obs/proc_stats.hpp"
#include "obs/registry.hpp"
#include "util/assert.hpp"

namespace baps::netio {

FrameServer::FrameServer(Params params, ConnectionHandler handler)
    : params_(std::move(params)), handler_(std::move(handler)) {
  BAPS_REQUIRE(handler_ != nullptr, "FrameServer needs a handler");
  if (params_.worker_threads == 0) params_.worker_threads = 1;
}

FrameServer::~FrameServer() { stop(); }

bool FrameServer::start(std::string* error) {
  BAPS_REQUIRE(!running_.load(), "server already started");
  NetError err;
  auto listener = TcpListener::listen(params_.host, params_.port,
                                      /*backlog=*/64, &err);
  if (!listener.has_value()) {
    if (error != nullptr) *error = err.message;
    return false;
  }
  listener_ = std::move(*listener);
  port_ = listener_.port();
  stop_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(params_.worker_threads);
  for (std::size_t i = 0; i < params_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return true;
}

void FrameServer::stop() {
  if (!running_.exchange(false)) return;
  stop_.store(true);
  {
    // Unblock in-flight sessions: shutting the socket down makes any
    // blocked read return immediately with kClosed.
    std::scoped_lock lock(mu_);
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  listener_.close();
  pending_.clear();
}

void FrameServer::accept_loop() {
  // Registered so the time-series sampler exports per-thread CPU for the
  // daemon's serving threads; the scope unregisters before thread exit.
  const obs::ScopedThreadCpu cpu("netio_accept");
  auto& accept_errors =
      obs::Registry::global().counter("netio_accept_errors_total");
  // Persistent accept errors (EMFILE keeps the listener readable) must not
  // pin a core: back off exponentially, reset on any successful poll cycle.
  constexpr int kBackoffStartMs = 1;
  constexpr int kBackoffCapMs = 100;
  int backoff_ms = kBackoffStartMs;
  while (!stop_.load()) {
    NetError err;
    auto conn = listener_.accept(params_.accept_poll_ms, &err);
    if (!conn.has_value()) {
      if (err.status == NetStatus::kTimeout) {
        backoff_ms = kBackoffStartMs;
        continue;
      }
      if (stop_.load()) break;
      accept_errors.inc();
      for (int slept = 0; slept < backoff_ms && !stop_.load(); slept += 10) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min(10, backoff_ms - slept)));
      }
      backoff_ms = std::min(backoff_ms * 2, kBackoffCapMs);
      continue;
    }
    backoff_ms = kBackoffStartMs;
    {
      std::scoped_lock lock(mu_);
      pending_.push_back(std::move(*conn));
    }
    cv_.notify_one();
  }
}

void FrameServer::worker_loop() {
  const obs::ScopedThreadCpu cpu("netio_worker");
  for (;;) {
    TcpConnection conn;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_.load() || !pending_.empty(); });
      if (stop_.load()) return;
      conn = std::move(pending_.front());
      pending_.pop_front();
      active_fds_.insert(conn.fd());
    }
    const int fd = conn.fd();
    {
      FrameChannel channel(std::move(conn), params_.deadlines,
                           params_.max_frame_payload);
      handler_(channel, stop_);
      // Unregister BEFORE ~FrameChannel returns the fd number to the
      // kernel: a concurrently accepted connection may reuse it, and a
      // late erase would unregister — or stop() would shutdown() — the
      // wrong session.
      std::scoped_lock lock(mu_);
      active_fds_.erase(fd);
    }
    sessions_handled_.fetch_add(1);
  }
}

}  // namespace baps::netio
