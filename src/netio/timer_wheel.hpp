// A hashed timing wheel for connection idle/deadline timers: O(1) arm and
// cancel, O(slots-passed) advance. Timers are keyed by caller-chosen ids
// (the epoll server uses monotonic session ids) and fire with one-tick
// granularity — precise enough for idle timeouts, cheap enough to re-arm
// on every inbound frame of 10k+ connections.
//
// Cancellation is lazy: cancel()/re-arm() just update the id's authoritative
// deadline; stale slot entries are skipped when their slot comes around.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/assert.hpp"

namespace baps::netio {

class TimerWheel {
 public:
  /// `tick_ms` is the firing granularity; `slots` the wheel size. One full
  /// revolution spans tick_ms * slots; longer delays simply survive a pass
  /// (entries carry their absolute deadline and re-check on expiry).
  explicit TimerWheel(std::uint64_t tick_ms = 100, std::size_t slots = 128)
      : tick_ms_(tick_ms), slots_(slots) {
    BAPS_REQUIRE(tick_ms > 0, "TimerWheel tick must be positive");
    BAPS_REQUIRE(slots > 0, "TimerWheel needs at least one slot");
  }

  /// Arms (or re-arms) timer `id` to fire `delay_ms` after `now_ms`.
  void arm(std::uint64_t id, std::uint64_t now_ms, std::uint64_t delay_ms) {
    const std::uint64_t deadline = now_ms + delay_ms;
    deadlines_[id] = deadline;
    slots_[slot_of(deadline)].push_back(Entry{id, deadline});
  }

  /// Disarms `id`; a no-op when not armed. Slot entries are reaped lazily.
  void cancel(std::uint64_t id) { deadlines_.erase(id); }

  bool armed(std::uint64_t id) const { return deadlines_.count(id) != 0; }
  std::size_t armed_count() const { return deadlines_.size(); }

  /// Advances the wheel to `now_ms`, appending every id whose deadline has
  /// passed to `*expired` (each id at most once; expired timers disarm).
  void advance(std::uint64_t now_ms, std::vector<std::uint64_t>* expired) {
    const std::uint64_t now_tick = now_ms / tick_ms_;
    if (now_tick < cursor_tick_) return;
    // Bound the walk to one revolution: beyond that every slot has been
    // visited once and re-walking them would only re-scan survivors.
    const std::uint64_t steps =
        std::min<std::uint64_t>(now_tick - cursor_tick_ + 1, slots_.size());
    const std::uint64_t first = now_tick + 1 - steps;
    for (std::uint64_t t = first; t <= now_tick; ++t) {
      auto& slot = slots_[t % slots_.size()];
      std::size_t kept = 0;
      for (Entry& e : slot) {
        const auto it = deadlines_.find(e.id);
        // Stale entry: cancelled, or re-armed under a different deadline.
        if (it == deadlines_.end() || it->second != e.deadline) continue;
        if (e.deadline <= now_ms) {
          expired->push_back(e.id);
          deadlines_.erase(it);
        } else {
          slot[kept++] = e;  // future revolution of this slot
        }
      }
      slot.resize(kept);
    }
    cursor_tick_ = now_tick;
  }

  /// Milliseconds until the next advance() could fire something: one tick
  /// when any timer is armed, -1 (wait forever) when none. Used as the
  /// epoll_wait timeout so an idle server with no timers sleeps fully.
  int poll_budget_ms() const {
    return deadlines_.empty() ? -1 : static_cast<int>(tick_ms_);
  }

  std::uint64_t tick_ms() const { return tick_ms_; }

 private:
  struct Entry {
    std::uint64_t id;
    std::uint64_t deadline;
  };

  std::size_t slot_of(std::uint64_t deadline_ms) const {
    return static_cast<std::size_t>((deadline_ms / tick_ms_) % slots_.size());
  }

  std::uint64_t tick_ms_;
  std::vector<std::vector<Entry>> slots_;
  std::uint64_t cursor_tick_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> deadlines_;
};

}  // namespace baps::netio
