// A keyed pool of idle FrameChannels: peer fetches and observer polls that
// used to dial a fresh TCP connection per operation now reuse a warm one —
// at 10k-connection scale the three-way handshake and slow-start tax per
// fetch is what dominates, not the frame bytes. Channels are returned to
// the pool only when the full request/response exchange succeeded; any
// failure discards the channel so a stale half-dead socket can never serve
// a second request.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "netio/frame_channel.hpp"
#include "netio/socket.hpp"

namespace baps::netio {

class ChannelPool {
 public:
  struct Params {
    Deadlines deadlines;
    std::uint64_t max_frame_payload = wire::kDefaultMaxPayload;
    /// Idle channels kept per host:port target; extras close on release.
    std::size_t max_idle_per_target = 4;
  };

  struct Acquired {
    std::unique_ptr<FrameChannel> channel;  ///< null when the dial failed
    bool reused = false;  ///< true: pooled socket — retry-once on failure
  };

  explicit ChannelPool(Params params) : params_(params) {}

  /// Pops the most recently parked channel for host:port, or dials a new
  /// one within the connect deadline. `reused` tells the caller whether a
  /// failure should be retried on a fresh dial (a pooled socket may have
  /// died while parked) or reported.
  Acquired acquire(const std::string& host, std::uint16_t port, NetError* err);

  /// Parks a healthy channel for reuse; beyond max_idle_per_target the
  /// channel is simply closed. Never park a channel after a failed or
  /// half-finished exchange.
  void release(const std::string& host, std::uint16_t port,
               std::unique_ptr<FrameChannel> channel);

  /// Closes every idle channel (shutdown path).
  void clear();

  std::size_t idle_count() const;

 private:
  static std::string key_of(const std::string& host, std::uint16_t port) {
    return host + ":" + std::to_string(port);
  }

  Params params_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<std::unique_ptr<FrameChannel>>>
      idle_;
};

}  // namespace baps::netio
