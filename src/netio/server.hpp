// A blocking-I/O frame server on a small worker pool: one accept thread
// feeds accepted connections to a fixed set of session workers, each of
// which runs the caller's handler over a FrameChannel. The pool bounds
// resource use (excess connections queue); stop() is a clean shutdown —
// the listener closes, queued connections drop, and in-flight sessions are
// unblocked by shutting their sockets down, then joined.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "netio/frame_channel.hpp"
#include "netio/socket.hpp"

namespace baps::netio {

class FrameServer {
 public:
  struct Params {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 → ephemeral
    std::size_t worker_threads = 4;
    int accept_poll_ms = 50;  ///< stop-flag responsiveness of the accept loop
    Deadlines deadlines;      ///< per-session I/O deadlines
    std::uint64_t max_frame_payload = wire::kDefaultMaxPayload;
  };

  /// Runs one connection's session; returns when the session ends. `stop`
  /// flips when the server is shutting down — long-lived sessions should
  /// treat a read timeout as "check stop, then keep waiting".
  using ConnectionHandler =
      std::function<void(FrameChannel& channel, const std::atomic<bool>& stop)>;

  FrameServer(Params params, ConnectionHandler handler);
  ~FrameServer();
  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Binds and starts the accept loop + workers. False (with *error) if the
  /// listener cannot bind.
  bool start(std::string* error);
  /// Idempotent clean shutdown; joins every thread.
  void stop();

  bool running() const { return running_.load(); }
  std::uint16_t port() const { return port_; }
  std::uint64_t sessions_handled() const { return sessions_handled_.load(); }

 private:
  void accept_loop();
  void worker_loop();

  Params params_;
  ConnectionHandler handler_;
  TcpListener listener_;
  std::uint16_t port_ = 0;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<TcpConnection> pending_;
  std::unordered_set<int> active_fds_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> sessions_handled_{0};
};

}  // namespace baps::netio
