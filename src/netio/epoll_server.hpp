// Edge-triggered epoll frame server: one event-loop thread multiplexes
// every connection, so concurrent sessions cost a few hundred bytes of
// state instead of a blocked thread each — the 10k-connection path the
// blocking FrameServer (netio/server.hpp) cannot reach. The blocking
// server remains the reference implementation; this loop must produce
// bit-identical frame semantics and wire metrics (proved by
// tests/integration/epoll_differential_test.cpp).
//
// Shape: accept4(SOCK_NONBLOCK) drains the listener per readiness edge
// (EMFILE parks accepting behind a retry timer instead of spinning); each
// connection owns a growing read buffer decoded incrementally with
// wire::decode_frame (kNeedMore ⇒ wait for the next edge, so partial
// frames resume exactly where they left off) and a bounded write queue
// flushed until EAGAIN (queue over budget ⇒ inbound processing pauses —
// true backpressure, not unbounded buffering). Idle connections expire
// via a hashed timer wheel. stop() drains gracefully: accepting stops,
// queued writes flush within drain_timeout_ms, stragglers are cut.
//
// The handler seam is per-frame, not per-session: the loop calls the
// handler once per fully-decoded inbound frame, and the handler replies
// through Connection::send (which enqueues; the loop flushes). Per-session
// protocol state hangs off Connection::state(). Handlers run ON the loop
// thread — they must not block.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "netio/socket.hpp"
#include "netio/timer_wheel.hpp"
#include "obs/span.hpp"
#include "wire/frame.hpp"

namespace baps::netio {

class EpollFrameServer {
 public:
  struct Params {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 → ephemeral
    int backlog = 1024;
    std::uint64_t max_frame_payload = wire::kDefaultMaxPayload;
    /// Per-connection write-queue budget; above it the connection's inbound
    /// processing pauses until the queue drains below half.
    std::size_t max_write_queue_bytes = 4u << 20;
    /// Close connections silent for this long; 0 disables (parity with the
    /// blocking server, whose sessions only end when the peer goes away).
    int idle_timeout_ms = 0;
    /// stop() lets queued writes flush for this long before cutting.
    int drain_timeout_ms = 2000;
    /// Accept ceiling; 0 = bounded only by fds. At the ceiling accepting
    /// parks (like EMFILE) until a connection closes.
    std::size_t max_connections = 0;
    /// When set, frame send/recv spans are recorded exactly like
    /// FrameChannel records them (sampled contexts only).
    obs::Tracer* tracer = nullptr;
  };

  /// One live connection, only ever touched from the loop thread. Handlers
  /// reply via send() and may stash per-session protocol state in state().
  class Connection {
   public:
    std::uint64_t id() const { return id_; }

    /// Enqueues one frame (encoded exactly as FrameChannel::send encodes
    /// it) and flushes as far as the socket allows. False when the
    /// connection is already closed.
    bool send(wire::FrameKind kind, std::string_view payload);
    bool send(wire::FrameKind kind, std::string_view payload,
              const obs::TraceContext& trace);

    /// Close once every queued byte is flushed (orderly protocol end).
    void close_after_flush();

    bool closed() const { return closed_; }
    std::size_t write_queue_bytes() const { return wq_bytes_; }

    /// Per-session state slot for the handler (e.g. proxy session FSM).
    std::shared_ptr<void>& state() { return state_; }

   private:
    friend class EpollFrameServer;

    struct OutFrame {
      std::string bytes;
      std::size_t off = 0;
      wire::FrameKind kind{};
      bool traced = false;
      obs::TraceContext trace;
      std::uint64_t t0 = 0;
    };

    EpollFrameServer* server_ = nullptr;
    int fd_ = -1;
    std::uint64_t id_ = 0;
    std::string rbuf_;
    std::size_t rbuf_off_ = 0;
    std::deque<OutFrame> wq_;
    std::size_t wq_bytes_ = 0;
    bool close_after_flush_ = false;
    bool closed_ = false;
    bool paused_ = false;        ///< inbound parked by write backpressure
    bool read_pending_ = false;  ///< socket had more bytes when we paused
    bool peer_eof_ = false;
    std::uint64_t last_activity_ms = 0;
    std::shared_ptr<void> state_;
  };

  /// Called once per decoded inbound frame, on the loop thread. Return
  /// false to end the session (queued replies still flush first).
  using FrameHandler = std::function<bool(Connection&, wire::Frame&&)>;

  EpollFrameServer(Params params, FrameHandler handler);
  ~EpollFrameServer();
  EpollFrameServer(const EpollFrameServer&) = delete;
  EpollFrameServer& operator=(const EpollFrameServer&) = delete;

  /// Binds, creates the epoll set, and starts the loop thread. False (with
  /// *error) when the listener cannot bind or epoll setup fails.
  bool start(std::string* error);
  /// Graceful drain then join; idempotent.
  void stop();

  bool running() const { return running_.load(); }
  std::uint16_t port() const { return port_; }
  std::uint64_t sessions_handled() const { return sessions_handled_.load(); }
  std::size_t connections_active() const { return connections_active_.load(); }

 private:
  void loop();
  void accept_drain(std::uint64_t now_ms);
  void read_drain(Connection& c, std::uint64_t now_ms);
  void process_frames(Connection& c, std::uint64_t now_ms);
  void flush_writes(Connection& c);
  void close_conn(Connection& c);
  void begin_drain(std::uint64_t now_ms);
  void reap_dead();
  std::uint64_t now_ms() const;

  Params params_;
  FrameHandler handler_;
  TcpListener listener_;
  std::uint16_t port_ = 0;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread loop_thread_;
  TimerWheel timers_;

  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::vector<std::uint64_t> dead_;
  std::uint64_t next_id_ = 1;

  bool accept_parked_ = false;
  std::uint64_t accept_retry_at_ms_ = 0;

  bool draining_ = false;
  std::uint64_t drain_deadline_ms_ = 0;

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> sessions_handled_{0};
  std::atomic<std::size_t> connections_active_{0};
};

}  // namespace baps::netio
