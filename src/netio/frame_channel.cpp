#include "netio/frame_channel.hpp"

#include <algorithm>
#include <chrono>

#include "netio/netio_metrics.hpp"
#include "obs/registry.hpp"
#include "wire/codec.hpp"

namespace baps::netio {

bool FrameChannel::send(wire::FrameKind kind, std::string_view payload,
                        NetError* err) {
  return send(kind, payload, obs::TraceContext{}, err);
}

bool FrameChannel::send(wire::FrameKind kind, std::string_view payload,
                        const obs::TraceContext& trace, NetError* err) {
  const bool traced =
      tracer_ != nullptr && trace.valid() && trace.sampled;
  const std::uint64_t t0 = traced ? obs::monotonic_ns() : 0;
  // Unsampled contexts stay off the wire: nothing downstream would record
  // them (sampling is decided at the root), and untraced frames must stay
  // byte-identical to the pre-tracing format.
  const std::string frame =
      (trace.valid() && trace.sampled)
          ? wire::encode_frame(kind, payload, trace)
          : wire::encode_frame(kind, payload);
  // Count BEFORE the bytes go out: once the peer can observe this frame the
  // counter must already include it, or a snapshot taken downstream of the
  // peer's reply races with the increment. A frame whose write then fails is
  // still counted — tx means "committed to the channel", on both transports.
  count_wire_frame(kind, "tx", frame.size());
  NetError local;
  NetError* e = (err != nullptr) ? err : &local;
  if (!conn_.write_all(frame.data(), frame.size(), deadlines_.write_ms, e)) {
    if (e->status == NetStatus::kTimeout) count_netio_timeout("write");
    return false;
  }
  if (traced) {
    tracer_->record_span(obs::SpanKind::kFrameSend, trace, t0,
                         obs::monotonic_ns());
  }
  return true;
}

std::optional<wire::Frame> FrameChannel::recv(NetError* err) {
  return recv(deadlines_.read_ms, err);
}

std::optional<wire::Frame> FrameChannel::recv(int timeout_ms, NetError* err) {
  NetError local;
  NetError* e = (err != nullptr) ? err : &local;
  // One deadline for the whole frame: the payload read gets whatever budget
  // the header read left over, not a fresh timeout_ms — otherwise a
  // slow-loris peer that trickles the header holds the worker for ~2x the
  // configured deadline.
  const auto started = std::chrono::steady_clock::now();
  // Only pay for a clock read when a tracer could use it; the context (and
  // whether it is sampled) is only known after the bytes are decoded.
  const bool may_trace = tracer_ != nullptr && tracer_->enabled();
  const std::uint64_t t0 = may_trace ? obs::monotonic_ns() : 0;
  std::string buf(wire::kHeaderSize, '\0');
  if (!conn_.read_exact(buf.data(), buf.size(), timeout_ms, e)) {
    if (e->status == NetStatus::kTimeout) count_netio_timeout("read");
    return std::nullopt;
  }
  // Validate the header before committing to the payload read; a bad header
  // must not drive a huge allocation or a bottomless read.
  wire::DecodeResult header = wire::decode_frame(buf, max_payload_);
  if (header.status != wire::DecodeStatus::kOk &&
      header.status != wire::DecodeStatus::kNeedMore) {
    const std::string reason = wire::decode_status_name(header.status);
    count_decode_error(reason);
    e->status = NetStatus::kError;
    e->message = "frame rejected: " + reason;
    return std::nullopt;
  }
  // Header is well-formed; read the payload the length field promises.
  std::uint32_t payload_len = 0;
  {
    wire::Reader r(buf);
    std::uint32_t magic = 0, skip32 = 0;
    std::uint16_t skip16 = 0;
    std::uint8_t skip8 = 0;
    r.u32(&magic);
    r.u8(&skip8);
    r.u8(&skip8);
    r.u16(&skip16);
    r.u32(&payload_len);
    r.u32(&skip32);
  }
  buf.resize(wire::kHeaderSize + payload_len);
  int payload_timeout_ms = timeout_ms;  // negative = wait forever
  if (timeout_ms >= 0) {
    const long long elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started)
            .count();
    payload_timeout_ms = static_cast<int>(
        timeout_ms - std::min<long long>(elapsed, timeout_ms));
  }
  if (payload_len > 0 &&
      !conn_.read_exact(buf.data() + wire::kHeaderSize, payload_len,
                        payload_timeout_ms, e)) {
    if (e->status == NetStatus::kTimeout) count_netio_timeout("read");
    return std::nullopt;
  }
  wire::DecodeResult full = wire::decode_frame(buf, max_payload_);
  if (full.status != wire::DecodeStatus::kOk) {
    const std::string reason = wire::decode_status_name(full.status);
    count_decode_error(reason);
    e->status = NetStatus::kError;
    e->message = "frame rejected: " + reason;
    return std::nullopt;
  }
  count_wire_frame(full.frame.kind, "rx", buf.size());
  if (may_trace && full.frame.trace.sampled) {
    tracer_->record_span(obs::SpanKind::kFrameRecv, full.frame.trace, t0,
                         obs::monotonic_ns());
  }
  *e = {};
  return std::move(full.frame);
}

}  // namespace baps::netio
