// POSIX TCP primitives with explicit deadlines. Sockets are kept
// non-blocking and every operation is poll()-driven against an absolute
// deadline, so a dead or wedged peer costs a bounded wait — never a hang.
// Errors are typed (NetError) so callers can distinguish the transient
// failures worth retrying (refused, reset) from timeouts and hard faults.
//
// Hosts are IPv4 literals ("127.0.0.1"); the transport targets LAN / loopback
// deployments (the paper's §6 setting) and deliberately avoids resolver
// dependencies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace baps::netio {

enum class NetStatus {
  kOk,
  kTimeout,  ///< deadline expired
  kClosed,   ///< orderly EOF from the peer
  kRefused,  ///< connection refused (no listener)
  kReset,    ///< connection reset / broken pipe
  kError,    ///< anything else (address, resource, protocol)
};

std::string net_status_name(NetStatus status);

struct NetError {
  NetStatus status = NetStatus::kOk;
  std::string message;

  bool ok() const { return status == NetStatus::kOk; }
  /// Worth retrying with backoff: the listener may simply not be up yet.
  bool transient() const {
    return status == NetStatus::kRefused || status == NetStatus::kReset;
  }
};

/// Per-operation deadlines, milliseconds. Negative means wait forever
/// (used only by tests; the daemons always bound their waits).
struct Deadlines {
  int connect_ms = 2000;
  int read_ms = 5000;
  int write_ms = 5000;
};

/// One bounded poll() on `fd` for `events` (wait_ms < 0 waits forever,
/// oversized waits are clamped). Unlike a raw poll(), the returned status
/// reflects `revents`: readiness of the requested events wins, but a wakeup
/// carrying only error bits maps POLLNVAL/POLLERR to kError and a lone
/// POLLHUP to kClosed instead of reporting the fd as ready.
NetStatus poll_fd(int fd, short events, int wait_ms);

/// Best-effort RLIMIT_NOFILE raise to at least `want` fds (clamped to the
/// hard limit). Returns the resulting soft limit. The 10k-connection paths
/// (epoll server, bench_connload) call this so default 1024-fd shells don't
/// masquerade as EMFILE backpressure.
std::size_t raise_fd_limit(std::size_t want);

/// A connected TCP stream. Move-only RAII over the fd.
class TcpConnection {
 public:
  TcpConnection() = default;
  /// Adopts an already-connected fd (from accept); sets non-blocking +
  /// TCP_NODELAY.
  explicit TcpConnection(int fd);
  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;
  ~TcpConnection();

  /// Connects to host:port within `timeout_ms`.
  static std::optional<TcpConnection> connect(const std::string& host,
                                              std::uint16_t port,
                                              int timeout_ms, NetError* err);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes exactly `n` bytes or fails (partial progress does not count).
  bool write_all(const void* data, std::size_t n, int timeout_ms,
                 NetError* err);
  /// Reads exactly `n` bytes or fails with kClosed / kTimeout / kReset.
  bool read_exact(void* data, std::size_t n, int timeout_ms, NetError* err);

  /// Unblocks any thread blocked in read/write on this socket (used for
  /// clean shutdown from another thread) without releasing the fd.
  void shutdown_both();
  void close();

 private:
  int fd_ = -1;
};

/// A bound, listening TCP socket.
class TcpListener {
 public:
  TcpListener() = default;
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  /// Binds host:port (port 0 picks an ephemeral port) and listens.
  static std::optional<TcpListener> listen(const std::string& host,
                                           std::uint16_t port, int backlog,
                                           NetError* err);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// The actually bound port (resolves ephemeral binds).
  std::uint16_t port() const { return port_; }

  /// Accepts one connection, waiting at most `timeout_ms` (kTimeout when
  /// none arrives — callers poll in a loop so stop flags stay responsive).
  std::optional<TcpConnection> accept(int timeout_ms, NetError* err);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace baps::netio
