// Bounded retry with exponential backoff for transient network errors.
// Only errors NetError::transient() reports (refused / reset — the listener
// not up yet, a racing close) are retried; timeouts and hard faults surface
// immediately so a dead peer costs one deadline, not max_attempts of them.
#pragma once

#include <algorithm>
#include <chrono>
#include <thread>

#include "netio/socket.hpp"
#include "obs/registry.hpp"

namespace baps::netio {

struct RetryPolicy {
  int max_attempts = 3;       ///< total tries, including the first
  int initial_backoff_ms = 10;
  double multiplier = 2.0;
  int max_backoff_ms = 250;
};

/// Runs `op` (signature: bool(NetError*)) until it succeeds, fails
/// non-transiently, or the attempt budget is spent. Each re-attempt bumps
/// `netio_retries_total{op=<what>}`.
template <typename Op>
bool retry_with_backoff(const RetryPolicy& policy, const char* what, Op&& op,
                        NetError* err) {
  NetError local;
  NetError* e = (err != nullptr) ? err : &local;
  int backoff_ms = policy.initial_backoff_ms;
  const int attempts = std::max(1, policy.max_attempts);
  for (int attempt = 1;; ++attempt) {
    if (op(e)) return true;
    if (!e->transient() || attempt >= attempts) return false;
    obs::Registry::global().counter("netio_retries_total", {{"op", what}}).inc();
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    // Clamp the recomputed backoff to >=1ms: initial_backoff_ms = 0 (or a
    // multiplier < 1 rounding down to 0) must not degenerate into a hot
    // retry spin that hammers the peer with zero delay.
    backoff_ms = std::max(
        1, std::min(policy.max_backoff_ms,
                    static_cast<int>(static_cast<double>(backoff_ms) *
                                     policy.multiplier)));
  }
}

}  // namespace baps::netio
