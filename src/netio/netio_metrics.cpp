#include "netio/netio_metrics.hpp"

namespace baps::netio {

void count_wire_frame(wire::FrameKind kind, const char* dir,
                      std::size_t bytes) {
  auto& reg = obs::Registry::global();
  reg.counter("wire_frames_total",
              {{"kind", wire::frame_kind_name(kind)}, {"dir", dir}})
      .inc();
  reg.counter("wire_bytes_total", {{"dir", dir}}).inc(bytes);
}

void count_netio_timeout(const char* op) {
  obs::Registry::global()
      .counter("netio_timeouts_total", {{"op", op}})
      .inc();
}

void count_decode_error(const std::string& reason) {
  obs::Registry::global()
      .counter("wire_decode_errors_total", {{"reason", reason}})
      .inc();
}

void register_netio_metric_families(obs::Registry* registry) {
  registry->gauge("netio_connections_active");
  registry->counter("netio_connections_total");
  registry->counter("netio_accept_errors_total");
  registry->counter("netio_epoll_wakeups_total");
  registry->counter("netio_epoll_accept_backpressure_total");
  registry->counter("netio_epoll_writeq_stall_total");
  registry->counter("netio_epoll_idle_closes_total");
  registry->counter("netio_epoll_drained_total");
  registry->counter("netio_pool_reuse_total");
  registry->counter("netio_pool_dial_total");
  registry->counter("netio_pool_discard_total");
}

}  // namespace baps::netio
