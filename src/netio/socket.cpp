#include "netio/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace baps::netio {

namespace {

using Clock = std::chrono::steady_clock;

std::string errno_text(int e) { return std::strerror(e); }

bool fill_error(NetError* err, NetStatus status, const std::string& message) {
  if (err != nullptr) {
    err->status = status;
    err->message = message;
  }
  return false;
}

NetStatus status_of_errno(int e) {
  switch (e) {
    case ECONNREFUSED: return NetStatus::kRefused;
    case ECONNRESET:
    case EPIPE: return NetStatus::kReset;
    case ETIMEDOUT: return NetStatus::kTimeout;
    default: return NetStatus::kError;
  }
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool parse_addr(const std::string& host, std::uint16_t port,
                sockaddr_in* addr, NetError* err) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return fill_error(err, NetStatus::kError,
                      "not an IPv4 address literal: " + host);
  }
  return true;
}

/// Waits for `events` on fd against a deadline; remaining_ms < 0 waits
/// forever. Returns kOk / kTimeout / kClosed / kError.
NetStatus poll_wait(int fd, short events, Clock::time_point deadline,
                    bool infinite) {
  for (;;) {
    int wait_ms = -1;
    if (!infinite) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() < 0) return NetStatus::kTimeout;
      // Clamp before narrowing: a huge remaining wait must poll again later,
      // not overflow into a negative (= infinite) poll timeout.
      constexpr long long kMaxPollMs = 60'000;
      wait_ms = static_cast<int>(std::min<long long>(left.count(), kMaxPollMs));
    }
    const NetStatus polled = poll_fd(fd, events, wait_ms);
    if (polled == NetStatus::kTimeout && !infinite &&
        Clock::now() < deadline) {
      continue;  // clamped slice expired, deadline has budget left
    }
    return polled;
  }
}

Clock::time_point deadline_from(int timeout_ms) {
  return Clock::now() + std::chrono::milliseconds(timeout_ms < 0 ? 0
                                                                 : timeout_ms);
}

}  // namespace

NetStatus poll_fd(int fd, short events, int wait_ms) {
  for (;;) {
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, wait_ms);
    if (rc == 0) return NetStatus::kTimeout;
    if (rc < 0) {
      if (errno == EINTR) continue;
      return NetStatus::kError;
    }
    // Requested readiness wins even when error bits ride along: the next
    // recv/send harvests the real errno (ECONNRESET, …), which is more
    // precise than anything revents can say.
    if ((p.revents & events) != 0) return NetStatus::kOk;
    if ((p.revents & POLLNVAL) != 0) return NetStatus::kError;
    if ((p.revents & POLLERR) != 0) return NetStatus::kError;
    if ((p.revents & POLLHUP) != 0) return NetStatus::kClosed;
    return NetStatus::kOk;
  }
}

std::size_t raise_fd_limit(std::size_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur != RLIM_INFINITY &&
      static_cast<std::size_t>(lim.rlim_cur) < want) {
    rlimit raised = lim;
    raised.rlim_cur =
        lim.rlim_max == RLIM_INFINITY
            ? static_cast<rlim_t>(want)
            : std::min<rlim_t>(static_cast<rlim_t>(want), lim.rlim_max);
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return lim.rlim_cur == RLIM_INFINITY
             ? static_cast<std::size_t>(-1)
             : static_cast<std::size_t>(lim.rlim_cur);
}

std::string net_status_name(NetStatus status) {
  switch (status) {
    case NetStatus::kOk: return "ok";
    case NetStatus::kTimeout: return "timeout";
    case NetStatus::kClosed: return "closed";
    case NetStatus::kRefused: return "refused";
    case NetStatus::kReset: return "reset";
    case NetStatus::kError: return "error";
  }
  return "unknown";
}

// --- TcpConnection --------------------------------------------------------

TcpConnection::TcpConnection(int fd) : fd_(fd) {
  set_nonblocking(fd_);
  set_nodelay(fd_);
}

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpConnection::~TcpConnection() { close(); }

void TcpConnection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpConnection::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::optional<TcpConnection> TcpConnection::connect(const std::string& host,
                                                    std::uint16_t port,
                                                    int timeout_ms,
                                                    NetError* err) {
  sockaddr_in addr{};
  if (!parse_addr(host, port, &addr, err)) return std::nullopt;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    fill_error(err, NetStatus::kError, "socket: " + errno_text(errno));
    return std::nullopt;
  }
  TcpConnection conn(fd);  // owns the fd from here on
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    fill_error(err, status_of_errno(errno), "connect: " + errno_text(errno));
    return std::nullopt;
  }
  if (rc != 0) {
    const NetStatus waited = poll_wait(fd, POLLOUT, deadline_from(timeout_ms),
                                       timeout_ms < 0);
    if (waited == NetStatus::kTimeout) {
      fill_error(err, waited, "connect: " + net_status_name(waited));
      return std::nullopt;
    }
    // Even an error/closed wakeup goes through SO_ERROR: the pending errno
    // (ECONNREFUSED, …) is more precise than the revents mapping, and retry
    // policy keys on that distinction.
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      fill_error(err, status_of_errno(so_error),
                 "connect: " + errno_text(so_error));
      return std::nullopt;
    }
    if (waited != NetStatus::kOk) {
      fill_error(err, waited, "connect: " + net_status_name(waited));
      return std::nullopt;
    }
  }
  if (err != nullptr) *err = {};
  return conn;
}

bool TcpConnection::write_all(const void* data, std::size_t n, int timeout_ms,
                              NetError* err) {
  if (fd_ < 0) return fill_error(err, NetStatus::kClosed, "write: closed fd");
  const auto* p = static_cast<const std::uint8_t*>(data);
  const auto deadline = deadline_from(timeout_ms);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const NetStatus waited =
          poll_wait(fd_, POLLOUT, deadline, timeout_ms < 0);
      if (waited != NetStatus::kOk) {
        return fill_error(err, waited, "write: " + net_status_name(waited));
      }
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return fill_error(err, status_of_errno(errno),
                      "write: " + errno_text(errno));
  }
  if (err != nullptr) *err = {};
  return true;
}

bool TcpConnection::read_exact(void* data, std::size_t n, int timeout_ms,
                               NetError* err) {
  if (fd_ < 0) return fill_error(err, NetStatus::kClosed, "read: closed fd");
  auto* p = static_cast<std::uint8_t*>(data);
  const auto deadline = deadline_from(timeout_ms);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd_, p + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) {
      return fill_error(err, NetStatus::kClosed, "read: peer closed");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const NetStatus waited = poll_wait(fd_, POLLIN, deadline, timeout_ms < 0);
      if (waited != NetStatus::kOk) {
        return fill_error(err, waited, "read: " + net_status_name(waited));
      }
      continue;
    }
    if (errno == EINTR) continue;
    return fill_error(err, status_of_errno(errno),
                      "read: " + errno_text(errno));
  }
  if (err != nullptr) *err = {};
  return true;
}

// --- TcpListener ----------------------------------------------------------

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(other.port_) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = other.port_;
  }
  return *this;
}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<TcpListener> TcpListener::listen(const std::string& host,
                                               std::uint16_t port, int backlog,
                                               NetError* err) {
  sockaddr_in addr{};
  if (!parse_addr(host, port, &addr, err)) return std::nullopt;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    fill_error(err, NetStatus::kError, "socket: " + errno_text(errno));
    return std::nullopt;
  }
  TcpListener l;
  l.fd_ = fd;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (!set_nonblocking(fd)) {
    fill_error(err, NetStatus::kError, "fcntl: " + errno_text(errno));
    return std::nullopt;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    fill_error(err, NetStatus::kError, "bind: " + errno_text(errno));
    return std::nullopt;
  }
  if (::listen(fd, backlog) != 0) {
    fill_error(err, NetStatus::kError, "listen: " + errno_text(errno));
    return std::nullopt;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    fill_error(err, NetStatus::kError, "getsockname: " + errno_text(errno));
    return std::nullopt;
  }
  l.port_ = ntohs(bound.sin_port);
  if (err != nullptr) *err = {};
  return l;
}

std::optional<TcpConnection> TcpListener::accept(int timeout_ms,
                                                 NetError* err) {
  if (fd_ < 0) {
    fill_error(err, NetStatus::kClosed, "accept: closed listener");
    return std::nullopt;
  }
  const NetStatus waited =
      poll_wait(fd_, POLLIN, deadline_from(timeout_ms), timeout_ms < 0);
  if (waited != NetStatus::kOk) {
    fill_error(err, waited, "accept: " + net_status_name(waited));
    return std::nullopt;
  }
  const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) {
    fill_error(err, status_of_errno(errno), "accept: " + errno_text(errno));
    return std::nullopt;
  }
  if (err != nullptr) *err = {};
  return TcpConnection(fd);
}

}  // namespace baps::netio
