#include "fault/churn.hpp"

#include "util/assert.hpp"

namespace baps::fault {

ChurnModel::ChurnModel(std::uint64_t seed, double rate,
                       std::uint32_t num_clients)
    : rng_(seed ^ 0xC4BA9E5EEDULL), rate_(rate) {
  BAPS_REQUIRE(num_clients > 0, "churn model needs at least one client");
  BAPS_REQUIRE(rate >= 0.0 && rate <= 1.0, "churn rate must be in [0,1]");
  departed_.assign(num_clients, 0);
  present_list_.resize(num_clients);
  pos_.resize(num_clients);
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    present_list_[c] = c;
    pos_[c] = c;
  }
}

void ChurnModel::move_to_departed(std::uint32_t client) {
  // Swap-remove from the present list, append to the departed list.
  const std::uint32_t at = pos_[client];
  const std::uint32_t moved = present_list_.back();
  present_list_[at] = moved;
  pos_[moved] = at;
  present_list_.pop_back();
  pos_[client] = static_cast<std::uint32_t>(departed_list_.size());
  departed_list_.push_back(client);
  departed_[client] = 1;
}

void ChurnModel::move_to_present(std::uint32_t client) {
  const std::uint32_t at = pos_[client];
  const std::uint32_t moved = departed_list_.back();
  departed_list_[at] = moved;
  pos_[moved] = at;
  departed_list_.pop_back();
  pos_[client] = static_cast<std::uint32_t>(present_list_.size());
  present_list_.push_back(client);
  departed_[client] = 0;
}

bool ChurnModel::ensure_present(std::uint32_t client) {
  BAPS_REQUIRE(client < departed_.size(), "client id out of range");
  if (departed_[client] == 0) return false;
  move_to_present(client);
  return true;
}

std::optional<ChurnModel::Event> ChurnModel::tick(std::uint32_t requester) {
  BAPS_REQUIRE(requester < departed_.size(), "client id out of range");
  BAPS_REQUIRE(departed_[requester] == 0,
               "requester must be present (call ensure_present first)");
  if (rate_ <= 0.0) return std::nullopt;
  if (rng_.uniform() >= rate_) return std::nullopt;

  // Depart when everyone is present, rejoin when the requester is the only
  // one left, otherwise an even coin.
  const std::uint32_t departable =
      static_cast<std::uint32_t>(present_list_.size()) - 1;  // not requester
  const bool can_depart = departable > 0;
  const bool can_rejoin = !departed_list_.empty();
  if (!can_depart && !can_rejoin) return std::nullopt;
  bool depart = can_depart;
  if (can_depart && can_rejoin) depart = rng_.uniform() < 0.5;

  Event ev;
  if (depart) {
    // Uniform among present clients excluding the requester: draw over the
    // list with the requester's slot skipped.
    std::uint32_t idx = static_cast<std::uint32_t>(rng_.below(departable));
    if (idx >= pos_[requester]) ++idx;
    ev.kind = Event::Kind::kDepart;
    ev.client = present_list_[idx];
    move_to_departed(ev.client);
  } else {
    const std::uint32_t idx =
        static_cast<std::uint32_t>(rng_.below(departed_list_.size()));
    ev.kind = Event::Kind::kRejoin;
    ev.client = departed_list_[idx];
    move_to_present(ev.client);
  }
  return ev;
}

}  // namespace baps::fault
