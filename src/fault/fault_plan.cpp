#include "fault/fault_plan.hpp"

#include <stdexcept>

#include "obs/registry.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace baps::fault {

namespace {

// Per-kind stream tags: decision and pick streams of one kind never overlap
// each other or another kind's, so interleaving cannot shift a schedule.
constexpr std::uint64_t kDecisionTag = 0xFA017D0000000000ULL;
constexpr std::uint64_t kPickTag = 0xFA017C0000000000ULL;

std::uint64_t stream_word(std::uint64_t seed, std::uint64_t tag,
                          FaultKind kind, std::uint64_t n) {
  // One SplitMix64 step over the combined identity: cheap, stateless, and a
  // pure function of (seed, tag, kind, n).
  SplitMix64 mixer(seed ^ tag ^
                   (static_cast<std::uint64_t>(kind) + 1) *
                       0x9E3779B97F4A7C15ULL ^
                   n * 0xD1B54A32D192ED03ULL);
  return mixer.next();
}

double word_to_unit(std::uint64_t word) {
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

obs::Counter& fault_counter(const char* family, FaultKind kind) {
  return obs::Registry::global().counter(family,
                                         {{"kind", fault_kind_name(kind)}});
}

}  // namespace

void register_fault_metric_families() {
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    fault_counter("fault_injected_total", static_cast<FaultKind>(k));
    fault_counter("fault_recovered_total", static_cast<FaultKind>(k));
  }
  // The churn-visible staleness counter the proxy bumps; registered here so
  // fault-free runs export it as an explicit zero.
  obs::Registry::global().counter("stale_index_hits_total");
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPeerDisconnect: return "peer_disconnect";
    case FaultKind::kPeerDepart: return "peer_depart";
    case FaultKind::kPeerJoin: return "peer_join";
    case FaultKind::kSlowPeer: return "slow_peer";
    case FaultKind::kDropFrame: return "drop_frame";
    case FaultKind::kCorruptFrame: return "corrupt_frame";
    case FaultKind::kProxyRestart: return "proxy_restart";
  }
  BAPS_REQUIRE(false, "unknown fault kind");
  return "";
}

bool fault_kind_recoverable(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPeerDisconnect:
    case FaultKind::kSlowPeer:
    case FaultKind::kDropFrame:
    case FaultKind::kCorruptFrame:
    case FaultKind::kProxyRestart:
      return true;
    case FaultKind::kPeerDepart:
    case FaultKind::kPeerJoin:
      return false;
  }
  BAPS_REQUIRE(false, "unknown fault kind");
  return false;
}

bool FaultRates::any() const {
  for (const double r : rate) {
    if (r > 0.0) return true;
  }
  return false;
}

std::optional<FaultRates> FaultRates::parse(std::string_view spec,
                                            std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  FaultRates rates;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return fail("fault rates: '" + std::string(item) + "' is not key=value");
    }
    const std::string key(item.substr(0, eq));
    const std::string value(item.substr(eq + 1));
    double parsed = 0.0;
    try {
      std::size_t used = 0;
      parsed = std::stod(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
    } catch (const std::exception&) {
      return fail("fault rates: bad value for '" + key + "': " + value);
    }
    std::optional<FaultKind> rate_key;
    if (key == "disconnect") {
      rate_key = FaultKind::kPeerDisconnect;
    } else if (key == "depart") {
      rate_key = FaultKind::kPeerDepart;
    } else if (key == "join") {
      rate_key = FaultKind::kPeerJoin;
    } else if (key == "slow") {
      rate_key = FaultKind::kSlowPeer;
    } else if (key == "drop") {
      rate_key = FaultKind::kDropFrame;
    } else if (key == "corrupt") {
      rate_key = FaultKind::kCorruptFrame;
    } else if (key == "restart") {
      rate_key = FaultKind::kProxyRestart;
    }
    if (rate_key.has_value()) {
      if (parsed < 0.0 || parsed > 1.0) {
        return fail("fault rates: '" + key + "' must be in [0,1]");
      }
      rates.of(*rate_key) = parsed;
    } else if (key == "slow_ms") {
      if (parsed < 0.0) return fail("fault rates: slow_ms must be >= 0");
      rates.slow_peer_delay_ms = static_cast<int>(parsed);
    } else if (key == "slow_budget_ms") {
      if (parsed < 0.0) {
        return fail("fault rates: slow_budget_ms must be >= 0");
      }
      rates.slow_peer_budget_ms = static_cast<int>(parsed);
    } else if (key == "polite") {
      rates.polite_departures = parsed != 0.0;
    } else if (key == "drop_holders") {
      rates.drop_failed_holders = parsed != 0.0;
    } else {
      return fail("fault rates: unknown key '" + key + "'");
    }
  }
  return rates;
}

FaultPlan::FaultPlan(std::uint64_t seed, const FaultRates& rates)
    : seed_(seed), rates_(rates) {}

std::uint64_t FaultPlan::decision_word(FaultKind kind, std::uint64_t n) const {
  return stream_word(seed_, kDecisionTag, kind, n);
}

bool FaultPlan::decide(FaultKind kind) {
  const std::size_t k = static_cast<std::size_t>(kind);
  const double rate = rates_.rate[k];
  std::scoped_lock lock(mu_);
  const std::uint64_t n = decisions_[k]++;
  if (rate <= 0.0) return false;
  return word_to_unit(decision_word(kind, n)) < rate;
}

void FaultPlan::note_injected(FaultKind kind) {
  const std::size_t k = static_cast<std::size_t>(kind);
  {
    std::scoped_lock lock(mu_);
    ++injected_[k];
    if (fault_kind_recoverable(kind)) ++pending_[k];
  }
  fault_counter("fault_injected_total", kind).inc();
}

bool FaultPlan::should_inject(FaultKind kind) {
  if (!decide(kind)) return false;
  note_injected(kind);
  return true;
}

std::uint32_t FaultPlan::pick(FaultKind kind, std::uint32_t n) {
  BAPS_REQUIRE(n > 0, "fault pick from an empty candidate set");
  const std::size_t k = static_cast<std::size_t>(kind);
  std::scoped_lock lock(mu_);
  const std::uint64_t word = stream_word(seed_, kPickTag, kind, picks_[k]++);
  return static_cast<std::uint32_t>(word % n);
}

void FaultPlan::begin_request() {
  std::scoped_lock lock(mu_);
  pending_.fill(0);
}

void FaultPlan::end_request_ok() {
  std::array<std::uint64_t, kNumFaultKinds> promoted{};
  {
    std::scoped_lock lock(mu_);
    for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
      recovered_[k] += pending_[k];
      promoted[k] = pending_[k];
    }
    pending_.fill(0);
  }
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    if (promoted[k] > 0) {
      fault_counter("fault_recovered_total", static_cast<FaultKind>(k))
          .inc(promoted[k]);
    }
  }
}

std::uint64_t FaultPlan::injected(FaultKind kind) const {
  std::scoped_lock lock(mu_);
  return injected_[static_cast<std::size_t>(kind)];
}

std::uint64_t FaultPlan::recovered(FaultKind kind) const {
  std::scoped_lock lock(mu_);
  return recovered_[static_cast<std::size_t>(kind)];
}

std::uint64_t FaultPlan::injected_total() const {
  std::scoped_lock lock(mu_);
  std::uint64_t total = 0;
  for (const std::uint64_t v : injected_) total += v;
  return total;
}

std::uint64_t FaultPlan::recovered_total() const {
  std::scoped_lock lock(mu_);
  std::uint64_t total = 0;
  for (const std::uint64_t v : recovered_) total += v;
  return total;
}

bool FaultPlan::fully_recovered() const {
  std::scoped_lock lock(mu_);
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    if (!fault_kind_recoverable(static_cast<FaultKind>(k))) continue;
    if (recovered_[k] != injected_[k]) return false;
  }
  return true;
}

}  // namespace baps::fault
