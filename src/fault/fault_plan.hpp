// Deterministic, seeded fault injection for the runtime protocol engine.
//
// The paper's title promises *reliable* sharing and §5 analyzes the failure
// modes of browser peers — dynamic joins and departures, silently evicted
// documents, the stale-index lookups that result. A FaultPlan makes every
// one of those shapes reproducible: per-kind rates drive injection decisions
// drawn from seeded per-kind streams, so the n-th decision for a kind is a
// pure function of (seed, kind, n) and never shifts when other kinds fire in
// between. Same seed + same rates ⇒ identical fault schedule, run after run.
//
// Accounting contract (the graceful-degradation proof): every injection
// bumps `fault_injected_total{kind}`; when the request that absorbed the
// fault completes correctly anyway (served from a different source), the
// pending injections are promoted to `fault_recovered_total{kind}`. A
// faulted run is healthy iff recovered == injected for every recoverable
// kind. Departures and joins are churn events, not per-request faults; their
// visible effect — false forwards against stale entries — is counted by the
// proxy as `stale_index_hits_total`.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace baps::fault {

enum class FaultKind : std::uint8_t {
  kPeerDisconnect = 0,  ///< holder vanishes mid-transfer (no delivery)
  kPeerDepart,          ///< browser leaves; its index entries go stale
  kPeerJoin,            ///< a departed browser comes back (cold cache)
  kSlowPeer,            ///< holder delays its delivery
  kDropFrame,           ///< a transport frame is lost in flight
  kCorruptFrame,        ///< a transport frame is corrupted in flight
  kProxyRestart,        ///< proxy loses cache + index, rebuilds the index
};
inline constexpr std::size_t kNumFaultKinds = 7;

const char* fault_kind_name(FaultKind kind);

/// Eagerly materializes fault_injected_total{kind} and
/// fault_recovered_total{kind} for every kind (plus the proxy's
/// stale_index_hits_total) in the global registry, zero-valued, so
/// first-interval time-series deltas and fault-free reports still carry the
/// full labeled families.
void register_fault_metric_families();

/// Recoverable kinds must leave the affected request served correctly from
/// another source; depart/join are membership events whose staleness effects
/// are accounted separately.
bool fault_kind_recoverable(FaultKind kind);

/// Per-kind injection probabilities plus the slow-peer shape. Parsed from
/// the compact CLI spec `disconnect=0.1,depart=0.01,join=0.5,slow=0.1,`
/// `drop=0.05,corrupt=0.02,restart=0.001` with optional tuning keys
/// `slow_ms=`, `slow_budget_ms=`, `polite=0|1`, `drop_holders=0|1`.
struct FaultRates {
  std::array<double, kNumFaultKinds> rate{};  ///< probability per decision

  /// Delay a slow peer injects before serving (real sleep over TCP).
  int slow_peer_delay_ms = 50;
  /// Loopback emulation of the proxy's peer read deadline: a slow-peer delay
  /// above this budget counts as an undelivered fetch. 0 tolerates any delay.
  int slow_peer_budget_ms = 0;
  /// Departing peers send index removes first (clean shutdown) instead of
  /// leaving stale entries behind (crash).
  bool polite_departures = false;
  /// Proxy-side robustness upgrade: a failed peer fetch drops *all* of that
  /// holder's index entries, not just the one that failed (a dead peer costs
  /// one false forward instead of one per stale entry).
  bool drop_failed_holders = false;

  double& of(FaultKind kind) { return rate[static_cast<std::size_t>(kind)]; }
  double of(FaultKind kind) const {
    return rate[static_cast<std::size_t>(kind)];
  }
  bool any() const;

  static std::optional<FaultRates> parse(std::string_view spec,
                                         std::string* error);
};

class FaultPlan {
 public:
  FaultPlan(std::uint64_t seed, const FaultRates& rates);

  std::uint64_t seed() const { return seed_; }
  const FaultRates& rates() const { return rates_; }

  /// Decides whether the next decision point for `kind` fires, WITHOUT
  /// recording an injection — for kinds whose effect may turn out to be a
  /// no-op (e.g. a departure with no eligible peer). Pair with
  /// note_injected() once the fault actually lands.
  bool decide(FaultKind kind);
  /// Records one landed injection (bumps `fault_injected_total{kind}` and
  /// the per-request pending set for recoverable kinds).
  void note_injected(FaultKind kind);
  /// decide() + note_injected() for kinds that always take effect.
  bool should_inject(FaultKind kind);

  /// Uniform draw in [0, n) from `kind`'s private selection stream (victim
  /// choice); n must be nonzero. Same determinism guarantee as decide().
  std::uint32_t pick(FaultKind kind, std::uint32_t n);

  // Per-request recovery window, driven by the client engine: begin_request
  // clears the pending set; end_request_ok promotes everything pending to
  // recovered — the request completed correctly despite the faults.
  void begin_request();
  void end_request_ok();

  std::uint64_t injected(FaultKind kind) const;
  std::uint64_t recovered(FaultKind kind) const;
  std::uint64_t injected_total() const;
  std::uint64_t recovered_total() const;
  /// True iff every recoverable kind has recovered == injected.
  bool fully_recovered() const;

 private:
  std::uint64_t decision_word(FaultKind kind, std::uint64_t n) const;

  const std::uint64_t seed_;
  const FaultRates rates_;

  // TCP transports inject from listener threads inside the (synchronous)
  // browse window; the plan is its own lock domain.
  mutable std::mutex mu_;
  std::array<std::uint64_t, kNumFaultKinds> decisions_{};  ///< stream cursors
  std::array<std::uint64_t, kNumFaultKinds> picks_{};
  std::array<std::uint64_t, kNumFaultKinds> injected_{};
  std::array<std::uint64_t, kNumFaultKinds> recovered_{};
  std::array<std::uint64_t, kNumFaultKinds> pending_{};
};

}  // namespace baps::fault
