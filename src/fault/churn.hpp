// Seeded client-churn model in the spirit of the paper's §5 dynamics:
// browsers join and leave the organization over the life of a trace, their
// caches empty on departure, and whatever the proxy believed about them goes
// stale. Drives the five simulated organizations (sim/orgs.cpp) and is
// usable standalone by any component with dense client ids.
//
// Determinism: one Xoshiro256 stream seeded once; the driver calls
// ensure_present + tick exactly once per request, so the same
// (seed, rate, request stream) reproduces the same membership history.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.hpp"

namespace baps::fault {

class ChurnModel {
 public:
  struct Event {
    enum class Kind : std::uint8_t { kDepart, kRejoin };
    Kind kind = Kind::kDepart;
    std::uint32_t client = 0;
  };

  /// `rate` is the per-request probability of one churn event.
  ChurnModel(std::uint64_t seed, double rate, std::uint32_t num_clients);

  std::uint32_t num_clients() const {
    return static_cast<std::uint32_t>(departed_.size());
  }
  bool departed(std::uint32_t client) const {
    return departed_[client] != 0;
  }
  std::uint32_t departed_count() const {
    return static_cast<std::uint32_t>(departed_list_.size());
  }

  /// A request from a departed client means it came back (cold): rejoins it
  /// and returns true. Call before tick() for each request.
  bool ensure_present(std::uint32_t client);

  /// One churn decision: at most one event per request. The requester is
  /// never chosen to depart (it is mid-request by definition).
  std::optional<Event> tick(std::uint32_t requester);

 private:
  void move_to_departed(std::uint32_t client);
  void move_to_present(std::uint32_t client);

  Xoshiro256 rng_;
  double rate_;
  std::vector<std::uint8_t> departed_;       // membership flag per client
  std::vector<std::uint32_t> present_list_;  // ids, swap-remove maintained
  std::vector<std::uint32_t> departed_list_;
  std::vector<std::uint32_t> pos_;  // index of client in its current list
};

}  // namespace baps::fault
