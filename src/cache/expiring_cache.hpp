// TTL-aware object cache. The paper's browser index carries "a time stamp
// of the file or the TTL (Time To Live) provided by the data source" (§2);
// this cache models the client side of that: every cached document records
// an expiry time, lookups are made against a clock, and expired entries are
// misses (lazily reclaimed). Supports the consistency experiments where
// origin-assigned TTLs bound how stale a shared browser copy can be.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <unordered_map>

#include "cache/object_cache.hpp"

namespace baps::cache {

class ExpiringCache {
 public:
  static constexpr double kNeverExpires =
      std::numeric_limits<double>::infinity();

  using ExpiryListener = std::function<void(DocId)>;

  ExpiringCache(std::uint64_t capacity_bytes, PolicyKind policy);

  std::uint64_t capacity_bytes() const { return cache_.capacity_bytes(); }
  std::uint64_t used_bytes() const { return cache_.used_bytes(); }
  std::size_t count() const { return cache_.count(); }

  /// True iff resident AND unexpired at `now`. Pure query.
  bool contains(DocId doc, double now) const;
  std::optional<std::uint64_t> peek_size(DocId doc, double now) const;

  /// Recency-touching lookup at time `now`. An expired entry is reclaimed
  /// (expiry listener fires), and the lookup misses.
  std::optional<std::uint64_t> touch(DocId doc, double now);

  /// Inserts with an absolute expiry time (kNeverExpires for none).
  bool insert(DocId doc, std::uint64_t size, double expires_at);

  bool erase(DocId doc);

  /// Remaining lifetime at `now`; nullopt if absent or already expired.
  std::optional<double> ttl_remaining(DocId doc, double now) const;

  /// Eagerly reclaims every entry expired at `now`; returns how many.
  std::size_t purge_expired(double now);

  /// Fired when an expired entry is reclaimed (lazy or purge) — distinct
  /// from the capacity-eviction listener below.
  void set_expiry_listener(ExpiryListener listener);
  void set_eviction_listener(ObjectCache::EvictionListener listener);

 private:
  bool expired(DocId doc, double now) const;
  void reclaim(DocId doc);

  ObjectCache cache_;
  std::unordered_map<DocId, double> expires_;
  ExpiryListener on_expire_;
};

}  // namespace baps::cache
