// GreedyDual-Size-Frequency (Cherkasova): priority
//   K(d) = L + freq(d) * cost(d) / size(d)
// with unit cost. L (the inflation value) rises to the priority of each
// evicted document, aging out stale-but-once-popular entries. Evict the
// lowest-priority document; O(log n) per op via an ordered set.
#pragma once

#include <cstdint>
#include <set>
#include <tuple>
#include <unordered_map>

#include "cache/policy.hpp"

namespace baps::cache {

class GdsfPolicy final : public EvictionPolicy {
 public:
  void on_insert(DocId doc, std::uint64_t size) override;
  void on_hit(DocId doc, std::uint64_t size) override;
  void on_remove(DocId doc) override;
  DocId victim() const override;

  double inflation() const { return inflation_; }

 private:
  struct Meta {
    double priority;
    std::uint64_t freq;
    std::uint64_t size;
  };
  using Key = std::tuple<double, DocId>;

  double priority_of(std::uint64_t freq, std::uint64_t size) const;

  double inflation_ = 0.0;
  std::unordered_map<DocId, Meta> meta_;
  std::set<Key> order_;  // ascending priority: begin() is the victim
};

}  // namespace baps::cache
