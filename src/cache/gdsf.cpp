#include "cache/gdsf.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace baps::cache {

double GdsfPolicy::priority_of(std::uint64_t freq, std::uint64_t size) const {
  const double s = static_cast<double>(std::max<std::uint64_t>(1, size));
  return inflation_ + static_cast<double>(freq) / s;
}

void GdsfPolicy::on_insert(DocId doc, std::uint64_t size) {
  BAPS_REQUIRE(!meta_.contains(doc), "doc already tracked by GDSF");
  const Meta m{priority_of(1, size), 1, size};
  meta_[doc] = m;
  order_.insert({m.priority, doc});
}

void GdsfPolicy::on_hit(DocId doc, std::uint64_t /*size*/) {
  const auto it = meta_.find(doc);
  BAPS_REQUIRE(it != meta_.end(), "hit on untracked doc");
  Meta& m = it->second;
  order_.erase({m.priority, doc});
  ++m.freq;
  m.priority = priority_of(m.freq, m.size);
  order_.insert({m.priority, doc});
}

void GdsfPolicy::on_remove(DocId doc) {
  const auto it = meta_.find(doc);
  BAPS_REQUIRE(it != meta_.end(), "remove of untracked doc");
  // Aging: L rises to the departing document's priority. Only genuine
  // evictions should inflate, but the cache cannot tell us why a document
  // leaves; explicit erases are rare enough that this approximation is the
  // standard one.
  inflation_ = std::max(inflation_, it->second.priority);
  order_.erase({it->second.priority, doc});
  meta_.erase(it);
}

DocId GdsfPolicy::victim() const {
  BAPS_REQUIRE(!order_.empty(), "victim() on empty GDSF");
  return std::get<1>(*order_.begin());
}

}  // namespace baps::cache
