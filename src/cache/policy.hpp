// Cache replacement policy interface.
//
// The paper's simulator uses LRU everywhere (§3.2); the additional policies
// (FIFO, LFU-with-tiebreak, SIZE, GDSF) support the ablation benchmarks that
// ask whether the browsers-aware gains are replacement-policy artifacts.
//
// A policy only tracks ordering metadata — the ObjectCache owns sizes and
// byte accounting and calls back into the policy on every event.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "trace/record.hpp"

namespace baps::cache {

using trace::DocId;

enum class PolicyKind { kLru, kFifo, kLfu, kSize, kGdsf };

/// All policy kinds, for parameterized tests and ablation sweeps.
inline constexpr PolicyKind kAllPolicies[] = {
    PolicyKind::kLru, PolicyKind::kFifo, PolicyKind::kLfu, PolicyKind::kSize,
    PolicyKind::kGdsf};

std::string policy_name(PolicyKind kind);

/// Eviction-ordering strategy. The cache guarantees: on_insert is called once
/// per resident document, on_hit only for resident documents, victim only
/// when at least one document is resident, and on_remove exactly once when a
/// document leaves (eviction or explicit erase).
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  /// Capacity hint: the cache expects up to `docs` resident documents.
  /// Slab/array-backed policies pre-size their storage; default no-op.
  virtual void reserve(std::size_t docs) { (void)docs; }

  virtual void on_insert(DocId doc, std::uint64_t size) = 0;
  virtual void on_hit(DocId doc, std::uint64_t size) = 0;
  virtual void on_remove(DocId doc) = 0;
  /// The document the policy would evict next. Must be resident.
  virtual DocId victim() const = 0;

  /// Removes and returns the next victim in one step. Equivalent to
  /// `{ v = victim(); on_remove(v); return v; }` — the default does exactly
  /// that — but policies that already know the victim's internal position
  /// (the LRU slab's tail) can skip the doc → position lookup on_remove
  /// would repeat.
  virtual DocId pop_victim() {
    const DocId v = victim();
    on_remove(v);
    return v;
  }
};

std::unique_ptr<EvictionPolicy> make_policy(PolicyKind kind);

}  // namespace baps::cache
