#include "cache/object_cache.hpp"

#include <utility>

#include "obs/registry.hpp"
#include "util/assert.hpp"

namespace baps::cache {

ObjectCache::ObjectCache(std::uint64_t capacity_bytes, PolicyKind policy)
    : capacity_(capacity_bytes), kind_(policy), policy_(make_policy(policy)) {}

ObjectCache::~ObjectCache() {
  // Fold this cache's lifetime totals into the per-policy registry family.
  // One resolve+bump per cache teardown keeps the per-operation path free of
  // atomics while sweeps still get exact per-policy accounting.
  if (stats_.insertions == 0 && stats_.evictions == 0 && stats_.erases == 0 &&
      stats_.hits == 0 && stats_.rejected_too_large == 0) {
    return;
  }
  auto& reg = obs::Registry::global();
  const obs::Labels labels = {{"policy", policy_name(kind_)}};
  reg.counter("cache_insertions_total", labels).inc(stats_.insertions);
  reg.counter("cache_evictions_total", labels).inc(stats_.evictions);
  reg.counter("cache_erases_total", labels).inc(stats_.erases);
  reg.counter("cache_hits_total", labels).inc(stats_.hits);
  reg.counter("cache_rejected_too_large_total", labels)
      .inc(stats_.rejected_too_large);
}

ObjectCache::ObjectCache(ObjectCache&& other) noexcept
    : capacity_(other.capacity_),
      kind_(other.kind_),
      policy_(std::move(other.policy_)),
      entries_(std::move(other.entries_)),
      used_(other.used_),
      on_evict_(std::move(other.on_evict_)),
      stats_(other.stats_) {
  other.entries_.clear();
  other.used_ = 0;
  other.stats_ = {};
}

ObjectCache& ObjectCache::operator=(ObjectCache&& other) noexcept {
  if (this == &other) return *this;
  capacity_ = other.capacity_;
  kind_ = other.kind_;
  policy_ = std::move(other.policy_);
  entries_ = std::move(other.entries_);
  used_ = other.used_;
  on_evict_ = std::move(other.on_evict_);
  stats_ = other.stats_;
  other.entries_.clear();
  other.used_ = 0;
  other.stats_ = {};
  return *this;
}

std::optional<std::uint64_t> ObjectCache::peek_size(DocId doc) const {
  const auto it = entries_.find(doc);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint64_t> ObjectCache::touch(DocId doc) {
  const auto it = entries_.find(doc);
  if (it == entries_.end()) return std::nullopt;
  policy_->on_hit(doc, it->second);
  ++stats_.hits;
  return it->second;
}

bool ObjectCache::insert(DocId doc, std::uint64_t size) {
  BAPS_REQUIRE(!entries_.contains(doc),
               "insert of resident doc — erase it first");
  if (size > capacity_) {
    ++stats_.rejected_too_large;
    return false;
  }
  while (used_ + size > capacity_) evict_one();
  entries_[doc] = size;
  used_ += size;
  policy_->on_insert(doc, size);
  ++stats_.insertions;
  return true;
}

bool ObjectCache::erase(DocId doc) {
  const auto it = entries_.find(doc);
  if (it == entries_.end()) return false;
  used_ -= it->second;
  policy_->on_remove(doc);
  entries_.erase(it);
  ++stats_.erases;
  return true;
}

void ObjectCache::set_eviction_listener(EvictionListener listener) {
  on_evict_ = std::move(listener);
}

void ObjectCache::evict_one() {
  BAPS_ENSURE(!entries_.empty(), "eviction from empty cache");
  const DocId victim = policy_->victim();
  const auto it = entries_.find(victim);
  BAPS_ENSURE(it != entries_.end(), "policy victim not resident");
  const std::uint64_t size = it->second;
  used_ -= size;
  policy_->on_remove(victim);
  entries_.erase(it);
  ++stats_.evictions;
  if (on_evict_) on_evict_(victim, size);
}

}  // namespace baps::cache
