#include "cache/object_cache.hpp"

#include "util/assert.hpp"

namespace baps::cache {

ObjectCache::ObjectCache(std::uint64_t capacity_bytes, PolicyKind policy)
    : capacity_(capacity_bytes), kind_(policy), policy_(make_policy(policy)) {}

std::optional<std::uint64_t> ObjectCache::peek_size(DocId doc) const {
  const auto it = entries_.find(doc);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint64_t> ObjectCache::touch(DocId doc) {
  const auto it = entries_.find(doc);
  if (it == entries_.end()) return std::nullopt;
  policy_->on_hit(doc, it->second);
  return it->second;
}

bool ObjectCache::insert(DocId doc, std::uint64_t size) {
  BAPS_REQUIRE(!entries_.contains(doc),
               "insert of resident doc — erase it first");
  if (size > capacity_) return false;
  while (used_ + size > capacity_) evict_one();
  entries_[doc] = size;
  used_ += size;
  policy_->on_insert(doc, size);
  return true;
}

bool ObjectCache::erase(DocId doc) {
  const auto it = entries_.find(doc);
  if (it == entries_.end()) return false;
  used_ -= it->second;
  policy_->on_remove(doc);
  entries_.erase(it);
  return true;
}

void ObjectCache::set_eviction_listener(EvictionListener listener) {
  on_evict_ = std::move(listener);
}

void ObjectCache::evict_one() {
  BAPS_ENSURE(!entries_.empty(), "eviction from empty cache");
  const DocId victim = policy_->victim();
  const auto it = entries_.find(victim);
  BAPS_ENSURE(it != entries_.end(), "policy victim not resident");
  const std::uint64_t size = it->second;
  used_ -= size;
  policy_->on_remove(victim);
  entries_.erase(it);
  if (on_evict_) on_evict_(victim, size);
}

}  // namespace baps::cache
