#include "cache/object_cache.hpp"

#include <utility>

#include "obs/registry.hpp"

namespace baps::cache {

ObjectCache::ObjectCache(std::uint64_t capacity_bytes, PolicyKind policy)
    : capacity_(capacity_bytes),
      kind_(policy),
      policy_(make_policy(policy)),
      lru_(policy == PolicyKind::kLru ? static_cast<LruPolicy*>(policy_.get())
                                      : nullptr) {}

ObjectCache::~ObjectCache() {
  // Fold this cache's lifetime totals into the per-policy registry family.
  // One resolve+bump per cache teardown keeps the per-operation path free of
  // atomics while sweeps still get exact per-policy accounting.
  if (stats_.insertions == 0 && stats_.evictions == 0 && stats_.erases == 0 &&
      stats_.hits == 0 && stats_.rejected_too_large == 0) {
    return;
  }
  auto& reg = obs::Registry::global();
  const obs::Labels labels = {{"policy", policy_name(kind_)}};
  reg.counter("cache_insertions_total", labels).inc(stats_.insertions);
  reg.counter("cache_evictions_total", labels).inc(stats_.evictions);
  reg.counter("cache_erases_total", labels).inc(stats_.erases);
  reg.counter("cache_hits_total", labels).inc(stats_.hits);
  reg.counter("cache_rejected_too_large_total", labels)
      .inc(stats_.rejected_too_large);
}

ObjectCache::ObjectCache(ObjectCache&& other) noexcept
    : capacity_(other.capacity_),
      kind_(other.kind_),
      policy_(std::move(other.policy_)),
      lru_(other.lru_),
      entries_(std::move(other.entries_)),
      used_(other.used_),
      on_evict_(std::move(other.on_evict_)),
      raw_evict_(other.raw_evict_),
      raw_evict_ctx_(other.raw_evict_ctx_),
      stats_(other.stats_) {
  other.lru_ = nullptr;
  other.entries_.clear();
  other.used_ = 0;
  other.raw_evict_ = nullptr;
  other.raw_evict_ctx_ = nullptr;
  other.stats_ = {};
}

ObjectCache& ObjectCache::operator=(ObjectCache&& other) noexcept {
  if (this == &other) return *this;
  capacity_ = other.capacity_;
  kind_ = other.kind_;
  policy_ = std::move(other.policy_);
  lru_ = other.lru_;
  entries_ = std::move(other.entries_);
  used_ = other.used_;
  on_evict_ = std::move(other.on_evict_);
  raw_evict_ = other.raw_evict_;
  raw_evict_ctx_ = other.raw_evict_ctx_;
  stats_ = other.stats_;
  other.lru_ = nullptr;
  other.entries_.clear();
  other.used_ = 0;
  other.raw_evict_ = nullptr;
  other.raw_evict_ctx_ = nullptr;
  other.stats_ = {};
  return *this;
}

void ObjectCache::reserve(std::size_t docs) {
  entries_.reserve(docs);
  policy_->reserve(docs);
}

void ObjectCache::set_eviction_listener(EvictionListener listener) {
  on_evict_ = std::move(listener);
}

void ObjectCache::set_raw_eviction_listener(RawEvictionListener fn,
                                            void* ctx) {
  raw_evict_ = fn;
  raw_evict_ctx_ = ctx;
}

}  // namespace baps::cache
