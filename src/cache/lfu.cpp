#include "cache/lfu.hpp"

#include "util/assert.hpp"

namespace baps::cache {

void LfuPolicy::reinsert(DocId doc, Meta& meta, std::uint64_t new_freq) {
  order_.erase({meta.freq, meta.tick, doc});
  meta.freq = new_freq;
  meta.tick = ++clock_;
  order_.insert({meta.freq, meta.tick, doc});
}

void LfuPolicy::on_insert(DocId doc, std::uint64_t /*size*/) {
  BAPS_REQUIRE(!meta_.contains(doc), "doc already tracked by LFU");
  const Meta m{1, ++clock_};
  meta_[doc] = m;
  order_.insert({m.freq, m.tick, doc});
}

void LfuPolicy::on_hit(DocId doc, std::uint64_t /*size*/) {
  const auto it = meta_.find(doc);
  BAPS_REQUIRE(it != meta_.end(), "hit on untracked doc");
  reinsert(doc, it->second, it->second.freq + 1);
}

void LfuPolicy::on_remove(DocId doc) {
  const auto it = meta_.find(doc);
  BAPS_REQUIRE(it != meta_.end(), "remove of untracked doc");
  order_.erase({it->second.freq, it->second.tick, doc});
  meta_.erase(it);
}

DocId LfuPolicy::victim() const {
  BAPS_REQUIRE(!order_.empty(), "victim() on empty LFU");
  return std::get<2>(*order_.begin());
}

}  // namespace baps::cache
