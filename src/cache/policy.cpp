#include "cache/policy.hpp"

#include "cache/fifo.hpp"
#include "cache/gdsf.hpp"
#include "cache/lfu.hpp"
#include "cache/lru.hpp"
#include "cache/size_policy.hpp"
#include "util/assert.hpp"

namespace baps::cache {

std::string policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return "LRU";
    case PolicyKind::kFifo: return "FIFO";
    case PolicyKind::kLfu: return "LFU";
    case PolicyKind::kSize: return "SIZE";
    case PolicyKind::kGdsf: return "GDSF";
  }
  BAPS_REQUIRE(false, "unknown policy kind");
  return {};
}

std::unique_ptr<EvictionPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return std::make_unique<LruPolicy>();
    case PolicyKind::kFifo: return std::make_unique<FifoPolicy>();
    case PolicyKind::kLfu: return std::make_unique<LfuPolicy>();
    case PolicyKind::kSize: return std::make_unique<SizePolicy>();
    case PolicyKind::kGdsf: return std::make_unique<GdsfPolicy>();
  }
  BAPS_REQUIRE(false, "unknown policy kind");
  return nullptr;
}

}  // namespace baps::cache
