// First-In-First-Out: insertion order, hits do not rejuvenate.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/policy.hpp"

namespace baps::cache {

class FifoPolicy final : public EvictionPolicy {
 public:
  void on_insert(DocId doc, std::uint64_t size) override;
  void on_hit(DocId doc, std::uint64_t size) override;
  void on_remove(DocId doc) override;
  DocId victim() const override;

 private:
  std::list<DocId> order_;  // front = newest, back = oldest
  std::unordered_map<DocId, std::list<DocId>::iterator> where_;
};

}  // namespace baps::cache
