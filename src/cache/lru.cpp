#include "cache/lru.hpp"

#include "util/assert.hpp"

namespace baps::cache {

void LruPolicy::on_insert(DocId doc, std::uint64_t /*size*/) {
  BAPS_REQUIRE(!where_.contains(doc), "doc already tracked by LRU");
  order_.push_front(doc);
  where_[doc] = order_.begin();
}

void LruPolicy::on_hit(DocId doc, std::uint64_t /*size*/) {
  const auto it = where_.find(doc);
  BAPS_REQUIRE(it != where_.end(), "hit on untracked doc");
  order_.splice(order_.begin(), order_, it->second);
}

void LruPolicy::on_remove(DocId doc) {
  const auto it = where_.find(doc);
  BAPS_REQUIRE(it != where_.end(), "remove of untracked doc");
  order_.erase(it->second);
  where_.erase(it);
}

DocId LruPolicy::victim() const {
  BAPS_REQUIRE(!order_.empty(), "victim() on empty LRU");
  return order_.back();
}

}  // namespace baps::cache
