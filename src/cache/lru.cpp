// LruPolicy is header-only (see lru.hpp for why); this TU just anchors the
// header in the library build so misuse shows up as a normal compile error.
#include "cache/lru.hpp"
