// SIZE policy: evict the largest resident document first (Williams et al.).
// Favors keeping many small documents — strong on hit ratio, weak on byte
// hit ratio; a useful contrast point in the ablation benches.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>

#include "cache/policy.hpp"

namespace baps::cache {

class SizePolicy final : public EvictionPolicy {
 public:
  void on_insert(DocId doc, std::uint64_t size) override;
  void on_hit(DocId doc, std::uint64_t size) override;
  void on_remove(DocId doc) override;
  DocId victim() const override;

 private:
  using Key = std::pair<std::uint64_t, DocId>;  // (size, doc)

  std::unordered_map<DocId, std::uint64_t> sizes_;
  std::set<Key> order_;  // rbegin() = largest = victim
};

}  // namespace baps::cache
