// Least-Frequently-Used with LRU tie-breaking (a.k.a. LFU-DA lite): evicts
// the lowest-frequency document; among equals, the least recently touched.
// Ordered-set keyed by (frequency, logical tick) gives O(log n) per op.
#pragma once

#include <cstdint>
#include <set>
#include <tuple>
#include <unordered_map>

#include "cache/policy.hpp"

namespace baps::cache {

class LfuPolicy final : public EvictionPolicy {
 public:
  void on_insert(DocId doc, std::uint64_t size) override;
  void on_hit(DocId doc, std::uint64_t size) override;
  void on_remove(DocId doc) override;
  DocId victim() const override;

 private:
  struct Meta {
    std::uint64_t freq;
    std::uint64_t tick;
  };
  using Key = std::tuple<std::uint64_t, std::uint64_t, DocId>;

  void reinsert(DocId doc, Meta& meta, std::uint64_t new_freq);

  std::uint64_t clock_ = 0;
  std::unordered_map<DocId, Meta> meta_;
  std::set<Key> order_;  // ascending (freq, tick): begin() is the victim
};

}  // namespace baps::cache
