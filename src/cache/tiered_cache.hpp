// Two-tier (memory / disk) cache model for the paper's §4.2 memory-byte-hit
// experiment.
//
// The paper models the RAM-resident portion of each cache as 1/10 of its
// size (following Rousskov & Soloviev's Squid measurements). We realize that
// as a small LRU "memory" cache layered over the full cache: a hit that
// lands in the memory tier is served at RAM speed, any other hit at disk
// speed, and hits promote the document into the memory tier (standard
// inclusive staging). Overall hit/miss behaviour is decided *only* by the
// full cache, so tiering never changes hit ratios — just where the bytes
// are served from.
#pragma once

#include <cstdint>
#include <optional>

#include "cache/object_cache.hpp"

namespace baps::cache {

enum class HitTier { kMemory, kDisk };

struct TieredLookup {
  std::uint64_t size = 0;
  HitTier tier = HitTier::kDisk;
};

/// Result of the single-probe touch_expected path.
struct TieredProbe {
  LookupOutcome outcome = LookupOutcome::kMiss;
  HitTier tier = HitTier::kDisk;  ///< meaningful only when outcome == kHit
};

class TieredCache {
 public:
  /// memory_fraction of the capacity is RAM (paper: 0.1).
  TieredCache(std::uint64_t capacity_bytes, double memory_fraction,
              PolicyKind policy);

  std::uint64_t capacity_bytes() const { return full_.capacity_bytes(); }
  std::uint64_t memory_capacity_bytes() const {
    return memory_.capacity_bytes();
  }
  std::uint64_t used_bytes() const { return full_.used_bytes(); }
  std::size_t count() const { return full_.count(); }

  bool contains(DocId doc) const { return full_.contains(doc); }

  /// Capacity hint (expected resident docs in the full cache): pre-sizes
  /// both tiers' tables so replay never rehashes. The memory tier holds a
  /// fraction of the documents; a quarter of the hint is generous.
  void reserve(std::size_t docs);
  std::optional<std::uint64_t> peek_size(DocId doc) const {
    return full_.peek_size(doc);
  }

  /// Lookup with tier attribution; promotes disk hits into the memory tier.
  std::optional<TieredLookup> touch(DocId doc) {
    const auto size = full_.touch(doc);
    if (!size) return std::nullopt;
    if (memory_.touch(doc)) {
      return TieredLookup{*size, HitTier::kMemory};
    }
    // Disk hit: stage into RAM (may displace colder memory-tier residents).
    if (*size <= memory_.capacity_bytes()) {
      memory_.insert(doc, *size);
    }
    return TieredLookup{*size, HitTier::kDisk};
  }

  /// Single-probe lookup for callers that know the size they expect (the
  /// replay hot path): a hit at `expected` behaves exactly like touch(), a
  /// size mismatch reports kStale without touching recency in either tier,
  /// a miss probes the full cache once. Same event sequence as
  /// peek_size-then-touch, minus the duplicate probe.
  TieredProbe touch_expected(DocId doc, std::uint64_t expected) {
    const LookupOutcome outcome = full_.touch_expected(doc, expected);
    if (outcome != LookupOutcome::kHit) {
      return TieredProbe{outcome, HitTier::kDisk};
    }
    if (memory_.touch(doc)) {
      return TieredProbe{LookupOutcome::kHit, HitTier::kMemory};
    }
    if (expected <= memory_.capacity_bytes()) {
      memory_.insert(doc, expected);
    }
    return TieredProbe{LookupOutcome::kHit, HitTier::kDisk};
  }

  /// Inserts into both tiers (a freshly fetched document passes through RAM).
  bool insert(DocId doc, std::uint64_t size) {
    if (!full_.insert(doc, size)) return false;
    if (size <= memory_.capacity_bytes() && !memory_.contains(doc)) {
      memory_.insert(doc, size);
    }
    return true;
  }

  bool erase(DocId doc) {
    memory_.erase(doc);
    return full_.erase(doc);
  }

  /// Called once per capacity-evicted document (after memory-tier cleanup).
  /// The internal memory-tier bookkeeping already occupies the full cache's
  /// listener slot, so register here, not on full().
  void set_eviction_listener(ObjectCache::EvictionListener listener);

  /// Function-pointer flavour for per-eviction hot paths (the simulated
  /// browser caches evict more often than they hit); wins over the
  /// std::function listener when both are set.
  void set_raw_eviction_listener(ObjectCache::RawEvictionListener fn,
                                 void* ctx);

  /// Exposes the underlying full cache for iteration.
  ObjectCache& full() { return full_; }
  const ObjectCache& full() const { return full_; }

 private:
  // Registered on full_ as a raw listener (one direct call per eviction,
  // no std::function dispatch): documents leaving the full cache must leave
  // the memory tier with them.
  static void on_full_eviction(void* ctx, DocId doc, std::uint64_t size);

  ObjectCache full_;
  ObjectCache memory_;
  ObjectCache::EvictionListener user_listener_;
  ObjectCache::RawEvictionListener user_raw_ = nullptr;
  void* user_raw_ctx_ = nullptr;
};

}  // namespace baps::cache
