// Two-tier (memory / disk) cache model for the paper's §4.2 memory-byte-hit
// experiment.
//
// The paper models the RAM-resident portion of each cache as 1/10 of its
// size (following Rousskov & Soloviev's Squid measurements). We realize that
// as a small LRU "memory" cache layered over the full cache: a hit that
// lands in the memory tier is served at RAM speed, any other hit at disk
// speed, and hits promote the document into the memory tier (standard
// inclusive staging). Overall hit/miss behaviour is decided *only* by the
// full cache, so tiering never changes hit ratios — just where the bytes
// are served from.
#pragma once

#include <cstdint>
#include <optional>

#include "cache/object_cache.hpp"

namespace baps::cache {

enum class HitTier { kMemory, kDisk };

struct TieredLookup {
  std::uint64_t size = 0;
  HitTier tier = HitTier::kDisk;
};

class TieredCache {
 public:
  /// memory_fraction of the capacity is RAM (paper: 0.1).
  TieredCache(std::uint64_t capacity_bytes, double memory_fraction,
              PolicyKind policy);

  std::uint64_t capacity_bytes() const { return full_.capacity_bytes(); }
  std::uint64_t memory_capacity_bytes() const {
    return memory_.capacity_bytes();
  }
  std::uint64_t used_bytes() const { return full_.used_bytes(); }
  std::size_t count() const { return full_.count(); }

  bool contains(DocId doc) const { return full_.contains(doc); }
  std::optional<std::uint64_t> peek_size(DocId doc) const {
    return full_.peek_size(doc);
  }

  /// Lookup with tier attribution; promotes disk hits into the memory tier.
  std::optional<TieredLookup> touch(DocId doc);

  /// Inserts into both tiers (a freshly fetched document passes through RAM).
  bool insert(DocId doc, std::uint64_t size);

  bool erase(DocId doc);

  /// Called once per capacity-evicted document (after memory-tier cleanup).
  /// The internal memory-tier bookkeeping already occupies the full cache's
  /// listener slot, so register here, not on full().
  void set_eviction_listener(ObjectCache::EvictionListener listener);

  /// Exposes the underlying full cache for iteration.
  ObjectCache& full() { return full_; }
  const ObjectCache& full() const { return full_; }

 private:
  ObjectCache full_;
  ObjectCache memory_;
  ObjectCache::EvictionListener user_listener_;
};

}  // namespace baps::cache
