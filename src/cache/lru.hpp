// Least-Recently-Used: the paper's replacement policy. O(1) per operation.
//
// Storage is a slab of intrusive doubly-linked nodes addressed by 32-bit
// indices instead of a std::list of heap nodes: moving a document to the MRU
// position rewrites four integers in a contiguous array, and a FlatMap maps
// doc → slot without per-node allocations. Freed slots are recycled LIFO.
// The eviction order is bit-identical to the previous std::list
// implementation (insert → front, hit → splice to front, victim → back);
// tests/cache/lru_diff_test.cpp locks that contract in.
//
// Every method is defined in-class: ObjectCache keeps a concrete LruPolicy*
// next to its EvictionPolicy pointer and calls these directly on the replay
// hot path, so they must be visible for inlining at the call site.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/policy.hpp"
#include "util/assert.hpp"
#include "util/flat_map.hpp"

namespace baps::cache {

class LruPolicy final : public EvictionPolicy {
 public:
  void reserve(std::size_t docs) override {
    nodes_.reserve(docs);
    where_.reserve(docs);
  }

  void on_insert(DocId doc, std::uint64_t /*size*/) override {
    const std::uint32_t slot = allocate(doc);
    if (!where_.insert(doc, slot)) {
      free_.push_back(slot);  // keep the slab consistent before throwing
      BAPS_REQUIRE(false, "doc already tracked by LRU");
    }
    link_front(slot);
  }

  void on_hit(DocId doc, std::uint64_t /*size*/) override {
    const std::uint32_t* slot = where_.find(doc);
    BAPS_REQUIRE(slot != nullptr, "hit on untracked doc");
    if (*slot == head_) return;
    unlink(*slot);
    link_front(*slot);
  }

  void on_remove(DocId doc) override {
    std::uint32_t slot = 0;
    BAPS_REQUIRE(where_.erase(doc, &slot), "remove of untracked doc");
    unlink(slot);
    free_.push_back(slot);
  }

  DocId victim() const override {
    BAPS_REQUIRE(tail_ != kNil, "victim() on empty LRU");
    return nodes_[tail_].doc;
  }

  DocId pop_victim() override {
    BAPS_REQUIRE(tail_ != kNil, "pop_victim() on empty LRU");
    const std::uint32_t slot = tail_;
    const DocId doc = nodes_[slot].doc;
    unlink(slot);  // the slot is the tail: no doc -> slot lookup needed
    free_.push_back(slot);
    where_.erase(doc);
    return doc;
  }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Node {
    DocId doc = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  std::uint32_t allocate(DocId doc) {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      nodes_[slot].doc = doc;
      return slot;
    }
    BAPS_ENSURE(nodes_.size() < kNil, "LRU slab exhausted 32-bit slot space");
    nodes_.push_back(Node{doc, kNil, kNil});
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }

  void link_front(std::uint32_t slot) {
    nodes_[slot].prev = kNil;
    nodes_[slot].next = head_;
    if (head_ != kNil) {
      nodes_[head_].prev = slot;
    } else {
      tail_ = slot;
    }
    head_ = slot;
  }

  void unlink(std::uint32_t slot) {
    const Node& n = nodes_[slot];
    if (n.prev != kNil) {
      nodes_[n.prev].next = n.next;
    } else {
      head_ = n.next;
    }
    if (n.next != kNil) {
      nodes_[n.next].prev = n.prev;
    } else {
      tail_ = n.prev;
    }
  }

  // head_ = most recently used, tail_ = eviction candidate.
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;  // recycled slots, LIFO
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  util::FlatMap<std::uint32_t> where_;  // doc -> slot
};

}  // namespace baps::cache
