// Least-Recently-Used: the paper's replacement policy. O(1) per operation
// via an intrusive list + hash map of list iterators.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/policy.hpp"

namespace baps::cache {

class LruPolicy final : public EvictionPolicy {
 public:
  void on_insert(DocId doc, std::uint64_t size) override;
  void on_hit(DocId doc, std::uint64_t size) override;
  void on_remove(DocId doc) override;
  DocId victim() const override;

 private:
  // Front = most recently used, back = eviction candidate.
  std::list<DocId> order_;
  std::unordered_map<DocId, std::list<DocId>::iterator> where_;
};

}  // namespace baps::cache
