#include "cache/switched_cache.hpp"

#include "util/assert.hpp"

namespace baps::cache {

SwitchedCache::SwitchedCache(std::vector<std::uint64_t> partition_capacities,
                             PolicyKind policy) {
  BAPS_REQUIRE(!partition_capacities.empty(),
               "switched cache needs at least one partition");
  partitions_.reserve(partition_capacities.size());
  for (const std::uint64_t cap : partition_capacities) {
    partitions_.emplace_back(cap, policy);
  }
}

void SwitchedCache::switch_to(std::size_t partition) {
  BAPS_REQUIRE(partition < partitions_.size(), "partition out of range");
  active_ = partition;
}

std::uint64_t SwitchedCache::capacity_bytes() const {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p.capacity_bytes();
  return total;
}

std::uint64_t SwitchedCache::used_bytes() const {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p.used_bytes();
  return total;
}

std::size_t SwitchedCache::count() const {
  std::size_t total = 0;
  for (const auto& p : partitions_) total += p.count();
  return total;
}

std::optional<std::size_t> SwitchedCache::partition_of(DocId doc) const {
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    if (partitions_[i].contains(doc)) return i;
  }
  return std::nullopt;
}

bool SwitchedCache::contains(DocId doc) const {
  return partition_of(doc).has_value();
}

std::optional<std::uint64_t> SwitchedCache::peek_size(DocId doc) const {
  if (const auto p = partition_of(doc)) return partitions_[*p].peek_size(doc);
  return std::nullopt;
}

std::optional<std::uint64_t> SwitchedCache::touch(DocId doc) {
  if (const auto p = partition_of(doc)) return partitions_[*p].touch(doc);
  return std::nullopt;
}

bool SwitchedCache::insert(DocId doc, std::uint64_t size) {
  if (const auto p = partition_of(doc)) partitions_[*p].erase(doc);
  return partitions_[active_].insert(doc, size);
}

bool SwitchedCache::erase(DocId doc) {
  if (const auto p = partition_of(doc)) return partitions_[*p].erase(doc);
  return false;
}

void SwitchedCache::set_eviction_listener(
    ObjectCache::EvictionListener listener) {
  // All partitions share one listener; copies are cheap (std::function).
  for (auto& p : partitions_) p.set_eviction_listener(listener);
}

}  // namespace baps::cache
