#include "cache/size_policy.hpp"

#include "util/assert.hpp"

namespace baps::cache {

void SizePolicy::on_insert(DocId doc, std::uint64_t size) {
  BAPS_REQUIRE(!sizes_.contains(doc), "doc already tracked by SIZE");
  sizes_[doc] = size;
  order_.insert({size, doc});
}

void SizePolicy::on_hit(DocId /*doc*/, std::uint64_t /*size*/) {
  // SIZE ranks purely by size; hits change nothing.
}

void SizePolicy::on_remove(DocId doc) {
  const auto it = sizes_.find(doc);
  BAPS_REQUIRE(it != sizes_.end(), "remove of untracked doc");
  order_.erase({it->second, doc});
  sizes_.erase(it);
}

DocId SizePolicy::victim() const {
  BAPS_REQUIRE(!order_.empty(), "victim() on empty SIZE");
  return order_.rbegin()->second;
}

}  // namespace baps::cache
