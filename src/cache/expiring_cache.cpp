#include "cache/expiring_cache.hpp"

#include <vector>

#include "util/assert.hpp"

namespace baps::cache {

ExpiringCache::ExpiringCache(std::uint64_t capacity_bytes, PolicyKind policy)
    : cache_(capacity_bytes, policy) {
  // Capacity evictions must drop the expiry record too. The user's own
  // eviction listener is layered on via set_eviction_listener below.
  cache_.set_eviction_listener(
      [this](DocId doc, std::uint64_t) { expires_.erase(doc); });
}

bool ExpiringCache::expired(DocId doc, double now) const {
  const auto it = expires_.find(doc);
  return it != expires_.end() && it->second <= now;
}

void ExpiringCache::reclaim(DocId doc) {
  expires_.erase(doc);
  cache_.erase(doc);
  if (on_expire_) on_expire_(doc);
}

bool ExpiringCache::contains(DocId doc, double now) const {
  return cache_.contains(doc) && !expired(doc, now);
}

std::optional<std::uint64_t> ExpiringCache::peek_size(DocId doc,
                                                      double now) const {
  if (!contains(doc, now)) return std::nullopt;
  return cache_.peek_size(doc);
}

std::optional<std::uint64_t> ExpiringCache::touch(DocId doc, double now) {
  if (!cache_.contains(doc)) return std::nullopt;
  if (expired(doc, now)) {
    reclaim(doc);
    return std::nullopt;
  }
  return cache_.touch(doc);
}

bool ExpiringCache::insert(DocId doc, std::uint64_t size, double expires_at) {
  BAPS_REQUIRE(!cache_.contains(doc),
               "insert of resident doc — erase it first");
  if (!cache_.insert(doc, size)) return false;
  expires_[doc] = expires_at;
  return true;
}

bool ExpiringCache::erase(DocId doc) {
  expires_.erase(doc);
  return cache_.erase(doc);
}

std::optional<double> ExpiringCache::ttl_remaining(DocId doc,
                                                   double now) const {
  if (!cache_.contains(doc)) return std::nullopt;
  const auto it = expires_.find(doc);
  BAPS_ENSURE(it != expires_.end(), "resident doc missing expiry record");
  if (it->second <= now) return std::nullopt;
  return it->second - now;
}

std::size_t ExpiringCache::purge_expired(double now) {
  std::vector<DocId> dead;
  for (const auto& [doc, at] : expires_) {
    if (at <= now) dead.push_back(doc);
  }
  for (const DocId doc : dead) reclaim(doc);
  return dead.size();
}

void ExpiringCache::set_expiry_listener(ExpiryListener listener) {
  on_expire_ = std::move(listener);
}

void ExpiringCache::set_eviction_listener(
    ObjectCache::EvictionListener listener) {
  cache_.set_eviction_listener(
      [this, user = std::move(listener)](DocId doc, std::uint64_t size) {
        expires_.erase(doc);
        if (user) user(doc, size);
      });
}

}  // namespace baps::cache
