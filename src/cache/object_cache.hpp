// Byte-capacity object cache: the building block for browser caches and the
// proxy cache in every simulated organization.
//
// Semantics follow the paper's simulator (§3.2):
//  * capacity is in bytes; inserting evicts policy-chosen victims until the
//    new document fits;
//  * a document larger than the whole cache is not cached at all;
//  * each resident document records the size it was cached at, so the
//    simulator can detect "hit on a document whose size has changed" and
//    count it as a miss.
//
// An optional eviction listener lets the browsers-aware index send the
// paper's invalidation messages when a browser cache replaces a document.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "cache/lru.hpp"
#include "cache/policy.hpp"
#include "util/assert.hpp"
#include "util/flat_map.hpp"

namespace baps::cache {

/// Outcome of a single-probe lookup that knows the size the caller expects.
enum class LookupOutcome : std::uint8_t {
  kMiss,   ///< not resident
  kHit,    ///< resident at the expected size (recency touched)
  kStale,  ///< resident at a different size (recency NOT touched)
};

class ObjectCache {
 public:
  using EvictionListener = std::function<void(DocId, std::uint64_t size)>;

  /// Allocation-free listener flavour for composing caches (TieredCache):
  /// a plain function pointer plus a context, so the per-eviction callback
  /// is a direct call instead of a std::function dispatch.
  using RawEvictionListener = void (*)(void* ctx, DocId doc,
                                       std::uint64_t size);

  /// Per-cache event counters. Plain integers (the cache is single-threaded,
  /// like the simulations that own it); the destructor folds them into the
  /// global obs registry as `cache_*_total{policy=...}` counters, so sweeps
  /// report per-policy insert/eviction totals without hot-path atomics.
  struct Stats {
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;  ///< capacity evictions only
    std::uint64_t erases = 0;     ///< explicit invalidations
    std::uint64_t hits = 0;       ///< recency-touching lookups that hit
    std::uint64_t rejected_too_large = 0;
  };

  ObjectCache(std::uint64_t capacity_bytes, PolicyKind policy);
  ~ObjectCache();

  ObjectCache(const ObjectCache&) = delete;
  ObjectCache& operator=(const ObjectCache&) = delete;
  // Moves transfer the stats (and zero the source) so each event is flushed
  // to the registry exactly once.
  ObjectCache(ObjectCache&& other) noexcept;
  ObjectCache& operator=(ObjectCache&& other) noexcept;

  std::uint64_t capacity_bytes() const { return capacity_; }
  std::uint64_t used_bytes() const { return used_; }
  std::size_t count() const { return entries_.size(); }
  PolicyKind policy() const { return kind_; }

  bool contains(DocId doc) const { return entries_.contains(doc); }

  /// Capacity hint: pre-sizes the entry table and the policy's storage for
  /// up to `docs` resident documents, so trace replay never rehashes
  /// mid-run. Call before the first insert (typically from TraceStats).
  void reserve(std::size_t docs);

  /// Size the document was cached at, without touching recency state.
  std::optional<std::uint64_t> peek_size(DocId doc) const {
    const std::uint64_t* size = entries_.find(doc);
    if (size == nullptr) return std::nullopt;
    return *size;
  }

  /// Recency-touching lookup: returns the cached size on hit, nullopt on
  /// miss. The *caller* decides whether a size mismatch is a miss (and then
  /// calls erase + insert), because that decision carries metric weight.
  std::optional<std::uint64_t> touch(DocId doc) {
    const std::uint64_t* size = entries_.find(doc);
    if (size == nullptr) return std::nullopt;
    policy_on_hit(doc, *size);
    ++stats_.hits;
    return *size;
  }

  /// Single-probe equivalent of peek_size-then-touch for the replay hot
  /// path: hits at `expected` touch recency, a size mismatch reports kStale
  /// without touching anything (the caller then erases), misses probe once.
  LookupOutcome touch_expected(DocId doc, std::uint64_t expected) {
    const std::uint64_t* size = entries_.find(doc);
    if (size == nullptr) return LookupOutcome::kMiss;
    if (*size != expected) return LookupOutcome::kStale;
    policy_on_hit(doc, expected);
    ++stats_.hits;
    return LookupOutcome::kHit;
  }

  /// Inserts (doc, size), evicting victims as needed. Returns false (and
  /// caches nothing) if size exceeds capacity. Re-inserting a resident doc
  /// is a programming error — erase first.
  bool insert(DocId doc, std::uint64_t size) {
    if (size > capacity_) {
      ++stats_.rejected_too_large;
      return false;
    }
    while (used_ + size > capacity_) evict_one();
    BAPS_REQUIRE(entries_.insert(doc, size),
                 "insert of resident doc — erase it first");
    used_ += size;
    if (lru_ != nullptr) {
      lru_->on_insert(doc, size);
    } else {
      policy_->on_insert(doc, size);
    }
    ++stats_.insertions;
    return true;
  }

  /// Removes a document; returns false if absent. The eviction listener is
  /// NOT called for explicit erases (they are invalidations the caller
  /// already knows about), only for capacity evictions.
  bool erase(DocId doc) {
    std::uint64_t size = 0;
    if (!entries_.erase(doc, &size)) return false;
    used_ -= size;
    if (lru_ != nullptr) {
      lru_->on_remove(doc);
    } else {
      policy_->on_remove(doc);
    }
    ++stats_.erases;
    return true;
  }

  /// Called once per capacity-evicted document.
  void set_eviction_listener(EvictionListener listener);

  /// Function-pointer flavour; wins over the std::function listener when
  /// both are set. Pass nullptr to clear.
  void set_raw_eviction_listener(RawEvictionListener fn, void* ctx);

  const Stats& stats() const { return stats_; }

  /// Iterates resident documents (order unspecified).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    entries_.for_each([&](DocId doc, std::uint64_t size) { fn(doc, size); });
  }

 private:
  // The replay hot path runs LRU caches almost exclusively; lru_ caches the
  // downcast of policy_ so on_hit/on_insert/pop_victim inline here instead
  // of going through virtual dispatch. Null for every other policy kind.
  void policy_on_hit(DocId doc, std::uint64_t size) {
    if (lru_ != nullptr) {
      lru_->on_hit(doc, size);
    } else {
      policy_->on_hit(doc, size);
    }
  }

  void evict_one() {
    BAPS_ENSURE(!entries_.empty(), "eviction from empty cache");
    const DocId victim =
        lru_ != nullptr ? lru_->pop_victim() : policy_->pop_victim();
    std::uint64_t size = 0;
    BAPS_ENSURE(entries_.erase(victim, &size), "policy victim not resident");
    used_ -= size;
    ++stats_.evictions;
    if (raw_evict_ != nullptr) {
      raw_evict_(raw_evict_ctx_, victim, size);
    } else if (on_evict_) {
      on_evict_(victim, size);
    }
  }

  std::uint64_t capacity_;
  PolicyKind kind_;
  std::unique_ptr<EvictionPolicy> policy_;
  LruPolicy* lru_ = nullptr;  // == policy_.get() iff kind_ == kLru
  util::FlatMap<std::uint64_t> entries_;  // doc -> cached size
  std::uint64_t used_ = 0;
  EvictionListener on_evict_;
  RawEvictionListener raw_evict_ = nullptr;
  void* raw_evict_ctx_ = nullptr;
  Stats stats_;
};

}  // namespace baps::cache
