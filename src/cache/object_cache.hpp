// Byte-capacity object cache: the building block for browser caches and the
// proxy cache in every simulated organization.
//
// Semantics follow the paper's simulator (§3.2):
//  * capacity is in bytes; inserting evicts policy-chosen victims until the
//    new document fits;
//  * a document larger than the whole cache is not cached at all;
//  * each resident document records the size it was cached at, so the
//    simulator can detect "hit on a document whose size has changed" and
//    count it as a miss.
//
// An optional eviction listener lets the browsers-aware index send the
// paper's invalidation messages when a browser cache replaces a document.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "cache/policy.hpp"

namespace baps::cache {

class ObjectCache {
 public:
  using EvictionListener = std::function<void(DocId, std::uint64_t size)>;

  /// Per-cache event counters. Plain integers (the cache is single-threaded,
  /// like the simulations that own it); the destructor folds them into the
  /// global obs registry as `cache_*_total{policy=...}` counters, so sweeps
  /// report per-policy insert/eviction totals without hot-path atomics.
  struct Stats {
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;  ///< capacity evictions only
    std::uint64_t erases = 0;     ///< explicit invalidations
    std::uint64_t hits = 0;       ///< recency-touching lookups that hit
    std::uint64_t rejected_too_large = 0;
  };

  ObjectCache(std::uint64_t capacity_bytes, PolicyKind policy);
  ~ObjectCache();

  ObjectCache(const ObjectCache&) = delete;
  ObjectCache& operator=(const ObjectCache&) = delete;
  // Moves transfer the stats (and zero the source) so each event is flushed
  // to the registry exactly once.
  ObjectCache(ObjectCache&& other) noexcept;
  ObjectCache& operator=(ObjectCache&& other) noexcept;

  std::uint64_t capacity_bytes() const { return capacity_; }
  std::uint64_t used_bytes() const { return used_; }
  std::size_t count() const { return entries_.size(); }
  PolicyKind policy() const { return kind_; }

  bool contains(DocId doc) const { return entries_.contains(doc); }

  /// Size the document was cached at, without touching recency state.
  std::optional<std::uint64_t> peek_size(DocId doc) const;

  /// Recency-touching lookup: returns the cached size on hit, nullopt on
  /// miss. The *caller* decides whether a size mismatch is a miss (and then
  /// calls erase + insert), because that decision carries metric weight.
  std::optional<std::uint64_t> touch(DocId doc);

  /// Inserts (doc, size), evicting victims as needed. Returns false (and
  /// caches nothing) if size exceeds capacity. Re-inserting a resident doc
  /// is a programming error — erase first.
  bool insert(DocId doc, std::uint64_t size);

  /// Removes a document; returns false if absent. The eviction listener is
  /// NOT called for explicit erases (they are invalidations the caller
  /// already knows about), only for capacity evictions.
  bool erase(DocId doc);

  /// Called once per capacity-evicted document.
  void set_eviction_listener(EvictionListener listener);

  const Stats& stats() const { return stats_; }

  /// Iterates resident documents (order unspecified).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [doc, size] : entries_) fn(doc, size);
  }

 private:
  void evict_one();

  std::uint64_t capacity_;
  PolicyKind kind_;
  std::unique_ptr<EvictionPolicy> policy_;
  std::unordered_map<DocId, std::uint64_t> entries_;  // doc -> cached size
  std::uint64_t used_ = 0;
  EvictionListener on_evict_;
  Stats stats_;
};

}  // namespace baps::cache
