#include "cache/fifo.hpp"

#include "util/assert.hpp"

namespace baps::cache {

void FifoPolicy::on_insert(DocId doc, std::uint64_t /*size*/) {
  BAPS_REQUIRE(!where_.contains(doc), "doc already tracked by FIFO");
  order_.push_front(doc);
  where_[doc] = order_.begin();
}

void FifoPolicy::on_hit(DocId /*doc*/, std::uint64_t /*size*/) {
  // FIFO ignores hits by definition.
}

void FifoPolicy::on_remove(DocId doc) {
  const auto it = where_.find(doc);
  BAPS_REQUIRE(it != where_.end(), "remove of untracked doc");
  order_.erase(it->second);
  where_.erase(it);
}

DocId FifoPolicy::victim() const {
  BAPS_REQUIRE(!order_.empty(), "victim() on empty FIFO");
  return order_.back();
}

}  // namespace baps::cache
