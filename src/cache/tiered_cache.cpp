#include "cache/tiered_cache.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace baps::cache {
namespace {

std::uint64_t memory_bytes(std::uint64_t capacity, double fraction) {
  BAPS_REQUIRE(fraction > 0.0 && fraction <= 1.0,
               "memory fraction must be in (0,1]");
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::llround(static_cast<double>(capacity) * fraction)));
}

}  // namespace

TieredCache::TieredCache(std::uint64_t capacity_bytes, double memory_fraction,
                         PolicyKind policy)
    : full_(capacity_bytes, policy),
      // The memory tier is always recency-managed regardless of the disk
      // policy: RAM staging is an OS page/buffer-cache effect, not a cache
      // replacement decision.
      memory_(memory_bytes(capacity_bytes, memory_fraction), PolicyKind::kLru) {
  // Documents leaving the full cache must leave the memory tier with them,
  // for both capacity evictions (listener) and explicit erases (TieredCache
  // routes those through erase()).
  full_.set_raw_eviction_listener(&TieredCache::on_full_eviction, this);
}

void TieredCache::on_full_eviction(void* ctx, DocId doc, std::uint64_t size) {
  auto* self = static_cast<TieredCache*>(ctx);
  self->memory_.erase(doc);
  if (self->user_raw_ != nullptr) {
    self->user_raw_(self->user_raw_ctx_, doc, size);
  } else if (self->user_listener_) {
    self->user_listener_(doc, size);
  }
}

void TieredCache::reserve(std::size_t docs) {
  full_.reserve(docs);
  memory_.reserve(docs / 4 + 1);
}

void TieredCache::set_eviction_listener(
    ObjectCache::EvictionListener listener) {
  user_listener_ = std::move(listener);
}

void TieredCache::set_raw_eviction_listener(
    ObjectCache::RawEvictionListener fn, void* ctx) {
  user_raw_ = fn;
  user_raw_ctx_ = ctx;
}

}  // namespace baps::cache
