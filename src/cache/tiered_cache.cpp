#include "cache/tiered_cache.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace baps::cache {
namespace {

std::uint64_t memory_bytes(std::uint64_t capacity, double fraction) {
  BAPS_REQUIRE(fraction > 0.0 && fraction <= 1.0,
               "memory fraction must be in (0,1]");
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::llround(static_cast<double>(capacity) * fraction)));
}

}  // namespace

TieredCache::TieredCache(std::uint64_t capacity_bytes, double memory_fraction,
                         PolicyKind policy)
    : full_(capacity_bytes, policy),
      // The memory tier is always recency-managed regardless of the disk
      // policy: RAM staging is an OS page/buffer-cache effect, not a cache
      // replacement decision.
      memory_(memory_bytes(capacity_bytes, memory_fraction), PolicyKind::kLru) {
  // Documents leaving the full cache must leave the memory tier with them,
  // for both capacity evictions (listener) and explicit erases (TieredCache
  // routes those through erase()).
  full_.set_eviction_listener([this](DocId doc, std::uint64_t size) {
    memory_.erase(doc);
    if (user_listener_) user_listener_(doc, size);
  });
}

void TieredCache::set_eviction_listener(
    ObjectCache::EvictionListener listener) {
  user_listener_ = std::move(listener);
}

std::optional<TieredLookup> TieredCache::touch(DocId doc) {
  const auto size = full_.touch(doc);
  if (!size) return std::nullopt;
  if (memory_.touch(doc)) {
    return TieredLookup{*size, HitTier::kMemory};
  }
  // Disk hit: stage into RAM (may displace colder memory-tier residents).
  if (*size <= memory_.capacity_bytes()) {
    memory_.insert(doc, *size);
  }
  return TieredLookup{*size, HitTier::kDisk};
}

bool TieredCache::insert(DocId doc, std::uint64_t size) {
  if (!full_.insert(doc, size)) return false;
  if (size <= memory_.capacity_bytes() && !memory_.contains(doc)) {
    memory_.insert(doc, size);
  }
  return true;
}

bool TieredCache::erase(DocId doc) {
  memory_.erase(doc);
  return full_.erase(doc);
}

}  // namespace baps::cache
