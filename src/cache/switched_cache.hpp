// Browser cache switch (paper §1, citing J. Fox's WebDeveloper 2000 tool):
// a user keeps several browser caches on one machine and switches the
// *active* one as their task changes — different caches for different
// contents and time periods. Switching "significantly increases the size of
// a browser cache for an effective management of multiple data types":
// content parked in an inactive partition survives churn that a single
// unified cache would have evicted it under.
//
// Model: N partitions, each an independent ObjectCache. Inserts go to the
// active partition; lookups hit ANY partition (all partitions live on the
// same disk). The ablation bench compares this against one unified cache of
// equal total capacity under phase-switching workloads.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/object_cache.hpp"

namespace baps::cache {

class SwitchedCache {
 public:
  /// One capacity per partition; partition 0 starts active.
  SwitchedCache(std::vector<std::uint64_t> partition_capacities,
                PolicyKind policy);

  std::size_t partition_count() const { return partitions_.size(); }
  std::size_t active_partition() const { return active_; }
  void switch_to(std::size_t partition);

  std::uint64_t capacity_bytes() const;  ///< sum over partitions
  std::uint64_t used_bytes() const;
  std::size_t count() const;

  bool contains(DocId doc) const;
  std::optional<std::uint64_t> peek_size(DocId doc) const;

  /// Recency-touching lookup across ALL partitions.
  std::optional<std::uint64_t> touch(DocId doc);

  /// Inserts into the active partition. If another partition already holds
  /// the document, that stale copy is dropped first (one copy per machine).
  bool insert(DocId doc, std::uint64_t size);

  /// Erases from whichever partition holds the document.
  bool erase(DocId doc);

  /// Fires for capacity evictions in any partition.
  void set_eviction_listener(ObjectCache::EvictionListener listener);

 private:
  std::optional<std::size_t> partition_of(DocId doc) const;

  std::vector<ObjectCache> partitions_;
  std::size_t active_ = 0;
};

}  // namespace baps::cache
