#include "trace/size_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace baps::trace {
namespace {

/// Three independent uniforms from one hashed stream: tail selector plus the
/// two inputs of Box–Muller (keeping them separate avoids conditioning the
/// lognormal draw on the tail-selection outcome).
struct ThreeUniforms {
  double sel;
  double u1;
  double u2;
};

ThreeUniforms hashed_uniforms(std::uint64_t seed, DocId doc,
                              std::uint32_t version) {
  baps::SplitMix64 sm(seed ^ (doc * 0x9E3779B97F4A7C15ULL) ^
                      (static_cast<std::uint64_t>(version) << 48));
  const auto to_unit = [](std::uint64_t x) {
    return (static_cast<double>(x >> 11) + 0.5) * 0x1.0p-53;
  };
  return {to_unit(sm.next()), to_unit(sm.next()), to_unit(sm.next())};
}

}  // namespace

std::uint64_t SizeModel::size_of(DocId doc, std::uint32_t version) const {
  const auto [sel, u1, u2] = hashed_uniforms(seed_, doc, version);
  double bytes;
  if (sel < params_.pareto_tail_prob) {
    // Inverse-CDF Pareto: x = x_min * (1-u)^(-1/alpha).
    bytes = static_cast<double>(params_.pareto_min) *
            std::pow(1.0 - u2, -1.0 / params_.pareto_alpha);
  } else {
    // Box–Muller lognormal from the two uniforms.
    const double z = std::sqrt(-2.0 * std::log(u2)) *
                     std::cos(2.0 * std::numbers::pi * u1);
    bytes = std::exp(params_.lognormal_mu + params_.lognormal_sigma * z);
  }
  bytes = std::clamp(bytes, static_cast<double>(params_.min_size),
                     static_cast<double>(params_.max_size));
  return static_cast<std::uint64_t>(bytes);
}

}  // namespace baps::trace
