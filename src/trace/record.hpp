// The request record model every other subsystem consumes.
//
// A trace is a time-ordered stream of (timestamp, client, document, size)
// tuples — exactly what the paper's trace-driven simulator needs and exactly
// what sanitized proxy logs (NLANR / BU / CA*netII) provide. Documents are
// interned to dense integer ids; URL strings are materialized on demand
// (synthetic traces derive them deterministically from the id, parsed traces
// carry the real strings).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace baps::trace {

using ClientId = std::uint32_t;
using DocId = std::uint64_t;

/// One HTTP request as seen at the client.
struct Request {
  double timestamp = 0.0;  ///< seconds since trace start
  ClientId client = 0;
  DocId doc = 0;
  std::uint64_t size = 0;  ///< response body size in bytes at request time
};

/// An immutable request stream plus its client/document universe.
class Trace {
 public:
  Trace() = default;
  Trace(std::string name, std::uint32_t num_clients, DocId num_docs,
        std::vector<Request> requests,
        std::vector<std::string> urls = {});

  const std::string& name() const { return name_; }
  std::uint32_t num_clients() const { return num_clients_; }
  DocId num_docs() const { return num_docs_; }
  const std::vector<Request>& requests() const { return requests_; }
  bool empty() const { return requests_.empty(); }
  std::size_t size() const { return requests_.size(); }

  /// URL for a document id: the parsed string when available, otherwise a
  /// deterministic synthetic URL.
  std::string url_of(DocId doc) const;

  /// Restricts the trace to the first `fraction` of clients (by id), keeping
  /// request order — this is how the paper scales "relative number of
  /// clients" in Figure 8.
  Trace restrict_clients(double fraction) const;

 private:
  std::string name_;
  std::uint32_t num_clients_ = 0;
  DocId num_docs_ = 0;
  std::vector<Request> requests_;
  std::vector<std::string> urls_;  // empty for synthetic traces
};

/// Deterministic URL for synthetic documents.
std::string synthetic_url(DocId doc);

}  // namespace baps::trace
