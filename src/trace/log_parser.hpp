// Parsers for real proxy access logs, so downstream users can feed actual
// traces (the paper used sanitized NLANR/BU/CA*netII logs of exactly these
// shapes). Two formats:
//
//  * Squid native access.log:
//      time.ms elapsed client code/status bytes method URL ident hier/host type
//    (the NLANR and CA*netII sanitized logs are this format, with client
//    addresses randomized);
//  * a minimal whitespace format for hand-made or converted traces:
//      <timestamp> <client> <url> <size>
//
// Clients and URLs are interned to dense ids in first-appearance order.
// Malformed lines are skipped and counted, not fatal — real logs are dirty.
#pragma once

#include <istream>
#include <string>

#include "trace/record.hpp"

namespace baps::trace {

struct ParseResult {
  Trace trace;
  std::uint64_t lines_parsed = 0;
  std::uint64_t lines_skipped = 0;
};

/// Parses Squid native-format logs. Only GET-like entries with positive byte
/// counts become requests (the simulator models document fetches).
ParseResult parse_squid_log(std::istream& in, const std::string& trace_name);

/// Parses the minimal `<timestamp> <client> <url> <size>` format.
ParseResult parse_plain_log(std::istream& in, const std::string& trace_name);

/// Serializes a trace to the plain format (round-trips with parse_plain_log).
void write_plain_log(const Trace& trace, std::ostream& out);

}  // namespace baps::trace
