// Trace characteristics — the columns of the paper's Table 1 plus the
// derived quantities the simulator's cache-sizing rules need (§3.2):
// infinite proxy cache size and per-client infinite browser cache sizes.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace baps::trace {

struct TraceStats {
  std::uint64_t num_requests = 0;
  std::uint64_t total_bytes = 0;        ///< sum of all response sizes
  std::uint64_t unique_docs = 0;        ///< distinct documents referenced
  /// Bound on document ids (Trace::num_docs()): ids are dense, so flat
  /// direct-indexed tables of this length cover the whole universe.
  DocId doc_universe = 0;
  /// "Infinite cache size": bytes to store every unique document (at its
  /// last observed size).
  std::uint64_t infinite_cache_bytes = 0;
  std::uint32_t num_clients = 0;
  double duration_seconds = 0.0;

  /// Upper bounds on any caching scheme: the fraction of requests (bytes)
  /// that re-reference a document whose size is unchanged since its previous
  /// access — i.e. the hit ratio of a single infinite shared cache.
  double max_hit_ratio = 0.0;
  double max_byte_hit_ratio = 0.0;

  /// Per-client infinite browser cache size: bytes of documents the client
  /// itself requested (at last observed size), indexed by client id.
  std::vector<std::uint64_t> infinite_browser_bytes;

  /// Distinct documents each client requested — the capacity hint for that
  /// client's browser-cache tables and index set (reserve, don't rehash).
  std::vector<std::uint32_t> distinct_docs_per_client;

  /// Mean of infinite_browser_bytes (the paper's "average infinite browser
  /// cache size").
  std::uint64_t avg_infinite_browser_bytes() const;
};

/// Single pass over the trace.
TraceStats compute_stats(const Trace& trace);

}  // namespace baps::trace
