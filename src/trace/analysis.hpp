// Workload characterization: the classical web-trace analyses (popularity
// skew, LRU stack distances, cross-client sharing) used to validate the
// synthetic presets against the published properties of the paper's traces
// — Zipf-like popularity, strong temporal locality, and a substantial
// sharable working set.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace baps::trace {

// ---------------------------------------------------------------------------
// Popularity.

struct PopularityCurve {
  /// Per-document request counts, sorted descending (rank order).
  std::vector<std::uint64_t> counts;
  std::uint64_t total_requests = 0;

  /// Fraction of all requests absorbed by the top `fraction` of documents.
  double head_mass(double fraction) const;

  /// Least-squares slope of log(count) vs log(rank+1) over the busiest
  /// `ranks` documents — the fitted Zipf alpha (positive).
  double fitted_zipf_alpha(std::size_t ranks = 1000) const;
};

PopularityCurve popularity_of(const Trace& trace);

// ---------------------------------------------------------------------------
// Temporal locality: LRU stack distances.

struct StackDistanceHistogram {
  /// buckets[k] counts re-references with stack distance in [2^k, 2^{k+1}).
  std::vector<std::uint64_t> buckets;
  std::uint64_t cold_misses = 0;     ///< first references (infinite distance)
  std::uint64_t rereferences = 0;

  /// Median stack distance over re-references (bucket-resolution).
  double median_distance() const;
};

/// Exact LRU stack distances in O(n log n) via a Fenwick tree over access
/// positions (Bennett & Kruskal's algorithm).
StackDistanceHistogram stack_distances_of(const Trace& trace);

// ---------------------------------------------------------------------------
// Cross-client sharing.

struct SharingStats {
  std::uint64_t unique_docs = 0;
  std::uint64_t shared_docs = 0;        ///< requested by ≥ 2 clients
  std::uint64_t requests_to_shared = 0; ///< requests touching shared docs
  std::uint64_t total_requests = 0;
  double mean_clients_per_doc = 0.0;

  double shared_doc_fraction() const {
    return unique_docs ? static_cast<double>(shared_docs) /
                             static_cast<double>(unique_docs)
                       : 0.0;
  }
  double shared_request_fraction() const {
    return total_requests ? static_cast<double>(requests_to_shared) /
                                static_cast<double>(total_requests)
                          : 0.0;
  }
};

SharingStats sharing_of(const Trace& trace);

}  // namespace baps::trace
