// Synthetic web-workload generator.
//
// Substitutes for the paper's NLANR / BU / CA*netII access logs (long since
// unavailable). The model reproduces the workload properties the paper's
// conclusions rest on:
//
//  * Zipf-like global document popularity (sharable cross-client locality);
//  * per-client private working sets (documents only one client ever asks
//    for — they populate browser caches without being sharable);
//  * per-client temporal locality via an LRU re-reference stack (this is
//    what makes small browser caches useful at all);
//  * heavy-tailed document sizes (hit ratio != byte hit ratio);
//  * skewed per-client request rates (the proxy and each browser replace at
//    different paces — the root cause of the paper's "two types of misses");
//  * document mutation: a document's size occasionally changes, and the
//    simulator counts a hit on a changed document as a miss (§3.2).
//
// Everything is deterministic in `seed`.
#pragma once

#include <cstdint>

#include "trace/record.hpp"
#include "trace/size_model.hpp"

namespace baps::trace {

struct GeneratorParams {
  std::uint64_t num_requests = 100'000;
  std::uint32_t num_clients = 50;

  /// Shared (globally popular) document universe size.
  DocId shared_docs = 20'000;
  /// Private documents *per client*.
  DocId private_docs_per_client = 2'000;

  /// Zipf exponent for shared-document popularity.
  double shared_alpha = 0.75;
  /// Zipf exponent for private-document popularity within a client.
  double private_alpha = 0.75;
  /// Zipf exponent for per-client request rates (0 = uniform clients).
  double client_rate_alpha = 0.5;
  /// Mean browsing-session length in requests. Clients issue requests in
  /// bursts (geometric length) separated by idle periods. While a client is
  /// idle its browser cache freezes — no evictions — while the proxy keeps
  /// churning under everyone else's traffic. This divergence of replacement
  /// paces is what leaves documents in browser caches after the proxy has
  /// replaced them (the paper's first "type of miss"). 1 = iid clients.
  double session_mean_requests = 40.0;

  /// Probability a request targets the shared universe (vs. private docs).
  double shared_prob = 0.65;
  /// Probability a request re-references the client's recent history
  /// (drawn from an LRU stack with Zipf-distributed stack distance).
  double temporal_prob = 0.25;
  /// Re-reference stack capacity per client.
  std::uint32_t history_depth = 256;
  /// Zipf exponent over stack distance for re-references.
  double stack_alpha = 1.2;
  /// Users revisit pages, not bulk downloads: a stack re-reference that
  /// lands on a document larger than this is re-drawn (up to 3 tries) with
  /// probability large_rereference_reject. Keeps re-referenced traffic
  /// byte-light, which is why real traces show byte hit ratios far below
  /// hit ratios. 0 disables.
  std::uint64_t large_doc_threshold = 64 * 1024;
  double large_rereference_reject = 0.8;

  /// Per-request probability that the requested document mutates (its size
  /// changes) immediately before this access.
  double mutation_prob = 0.002;

  /// Popularity/size anti-correlation for shared documents: sizes are scaled
  /// by ((rank+1) / (shared_docs/2)) ^ exponent, clamped to
  /// [min_factor, max_factor]. Real traces show popular documents skewing
  /// small, which is why hit ratios exceed byte hit ratios — exponent 0
  /// disables the effect.
  double size_popularity_exponent = 0.9;
  double size_factor_min = 0.04;
  double size_factor_max = 12.0;

  /// Mean request inter-arrival time across the whole population, seconds.
  double mean_interarrival = 0.25;

  SizeModelParams size_model{};
};

/// Generates a complete trace. Single pass, O(requests · log universe).
Trace generate_trace(const std::string& name, const GeneratorParams& params,
                     std::uint64_t seed);

}  // namespace baps::trace
