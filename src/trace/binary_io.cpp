#include "trace/binary_io.hpp"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>

#include "util/assert.hpp"

namespace baps::trace {
namespace {

constexpr char kMagic[8] = {'B', 'A', 'P', 'S', 'T', 'R', 'C', '1'};

static_assert(std::endian::native == std::endian::little,
              "binary trace io assumes a little-endian host");

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  BAPS_REQUIRE(in.good(), "truncated binary trace");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const auto len = read_pod<std::uint32_t>(in);
  BAPS_REQUIRE(len <= (64u << 20), "implausible string length");
  std::string s(len, '\0');
  in.read(s.data(), len);
  BAPS_REQUIRE(in.good(), "truncated binary trace");
  return s;
}

}  // namespace

void write_binary(const Trace& trace, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  write_string(out, trace.name());
  write_pod<std::uint32_t>(out, trace.num_clients());
  write_pod<std::uint64_t>(out, trace.num_docs());
  write_pod<std::uint64_t>(out, trace.size());
  // A trace either has parsed URLs for every doc or synthesizes them all;
  // probe by checking whether doc 0 round-trips as synthetic.
  const bool has_urls =
      trace.num_docs() > 0 && trace.url_of(0) != synthetic_url(0);
  write_pod<std::uint64_t>(out, has_urls ? trace.num_docs() : 0);
  for (const Request& r : trace.requests()) {
    write_pod(out, r.timestamp);
    write_pod(out, r.client);
    write_pod(out, r.doc);
    write_pod(out, r.size);
  }
  if (has_urls) {
    for (DocId d = 0; d < trace.num_docs(); ++d) {
      write_string(out, trace.url_of(d));
    }
  }
  BAPS_ENSURE(out.good(), "binary trace write failed");
}

Trace read_binary(std::istream& in) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  BAPS_REQUIRE(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
               "not a baps binary trace");
  const std::string name = read_string(in);
  const auto num_clients = read_pod<std::uint32_t>(in);
  const auto num_docs = read_pod<std::uint64_t>(in);
  const auto num_requests = read_pod<std::uint64_t>(in);
  const auto num_urls = read_pod<std::uint64_t>(in);
  BAPS_REQUIRE(num_urls == 0 || num_urls == num_docs,
               "url table must be absent or complete");

  std::vector<Request> requests;
  requests.reserve(num_requests);
  for (std::uint64_t i = 0; i < num_requests; ++i) {
    Request r;
    r.timestamp = read_pod<double>(in);
    r.client = read_pod<ClientId>(in);
    r.doc = read_pod<DocId>(in);
    r.size = read_pod<std::uint64_t>(in);
    requests.push_back(r);
  }
  std::vector<std::string> urls;
  urls.reserve(num_urls);
  for (std::uint64_t i = 0; i < num_urls; ++i) {
    urls.push_back(read_string(in));
  }
  return Trace(name, num_clients, num_docs, std::move(requests),
               std::move(urls));
}

}  // namespace baps::trace
