#include "trace/presets.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace baps::trace {
namespace {

constexpr std::uint64_t kPresetSeedBase = 0xBA9500;

std::uint64_t preset_seed(Preset p) {
  return kPresetSeedBase + static_cast<std::uint64_t>(p);
}

}  // namespace

std::vector<Preset> all_presets() {
  return {Preset::kNlanrUc, Preset::kNlanrBo1, Preset::kBu95, Preset::kBu98,
          Preset::kCanet2};
}

std::string preset_name(Preset p) {
  switch (p) {
    case Preset::kNlanrUc: return "NLANR-uc";
    case Preset::kNlanrBo1: return "NLANR-bo1";
    case Preset::kBu95: return "BU-95";
    case Preset::kBu98: return "BU-98";
    case Preset::kCanet2: return "CA*netII";
  }
  BAPS_REQUIRE(false, "unknown preset");
  return {};
}

GeneratorParams preset_params(Preset p) {
  GeneratorParams g;
  switch (p) {
    case Preset::kNlanrUc:
      // Large client population behind a busy proxy; modest per-client
      // locality, substantial cross-client sharing.
      g.num_requests = 300'000;
      g.num_clients = 200;
      g.shared_docs = 150'000;
      g.private_docs_per_client = 1'100;
      g.shared_alpha = 0.78;
      g.shared_prob = 0.62;
      g.temporal_prob = 0.22;
      g.client_rate_alpha = 0.55;
      break;
    case Preset::kNlanrBo1:
      g.num_requests = 250'000;
      g.num_clients = 150;
      g.shared_docs = 105'000;
      g.private_docs_per_client = 1'300;
      g.shared_alpha = 0.80;
      g.shared_prob = 0.60;
      g.temporal_prob = 0.26;
      g.client_rate_alpha = 0.50;
      break;
    case Preset::kBu95:
      // 1995 campus population: few machines, strong locality → the highest
      // max hit ratios in Table 1.
      g.num_requests = 150'000;
      g.num_clients = 37;
      g.shared_docs = 50'000;
      g.private_docs_per_client = 2'200;
      g.shared_alpha = 0.85;
      g.shared_prob = 0.68;
      g.temporal_prob = 0.30;
      g.client_rate_alpha = 0.45;
      // 1995-era web: smaller documents and a thinner tail.
      g.size_model.lognormal_mu = 8.0;
      g.size_model.pareto_min = 32 * 1024;
      g.size_model.max_size = 64ULL << 20;
      break;
    case Preset::kBu98:
      // 1998: access variation up, locality down (Barford et al. 1999) —
      // larger universe, weaker skew, more private browsing.
      g.num_requests = 200'000;
      g.num_clients = 45;
      g.shared_docs = 100'000;
      g.private_docs_per_client = 2'900;
      g.shared_alpha = 0.72;
      g.shared_prob = 0.55;
      g.temporal_prob = 0.24;
      g.client_rate_alpha = 0.45;
      break;
    case Preset::kCanet2:
      // Parent cache with just 3 (child-proxy) clients: the accumulated
      // browser space is tiny relative to the proxy — the paper's limit case.
      g.num_requests = 80'000;
      g.num_clients = 3;
      g.shared_docs = 42'000;
      g.private_docs_per_client = 8'000;
      g.shared_alpha = 0.74;
      g.shared_prob = 0.58;
      g.temporal_prob = 0.24;
      g.client_rate_alpha = 0.30;
      break;
  }
  return g;
}

Trace load_preset(Preset p) {
  return generate_trace(preset_name(p), preset_params(p), preset_seed(p));
}

Trace load_preset_scaled(Preset p, double factor) {
  BAPS_REQUIRE(factor > 0.0 && factor <= 1.0, "scale factor must be in (0,1]");
  GeneratorParams g = preset_params(p);
  const auto scale64 = [factor](std::uint64_t v) {
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(v) * factor));
  };
  g.num_requests = scale64(g.num_requests);
  g.shared_docs = scale64(g.shared_docs);
  g.private_docs_per_client = scale64(g.private_docs_per_client);
  return generate_trace(preset_name(p), g, preset_seed(p));
}

}  // namespace baps::trace
