// Named workload presets standing in for the paper's five traces (Table 1).
//
// Volumes are scaled to laptop-size runs; the *shape* knobs (client counts,
// popularity skew, sharing degree, temporal locality, 1995-vs-1998 locality
// decay, the 3-client CA*netII limit case) follow the published trace
// characteristics. bench_table1 regenerates Table 1 from these presets.
#pragma once

#include <string>
#include <vector>

#include "trace/generator.hpp"

namespace baps::trace {

enum class Preset {
  kNlanrUc,    ///< NLANR "uc" proxy, 2000-07-14: many clients, modest locality
  kNlanrBo1,   ///< NLANR "bo1" proxy, 2000-08-29
  kBu95,       ///< Boston University 1995: strong locality, few clients
  kBu98,       ///< Boston University 1998: weaker locality (access variation up)
  kCanet2,     ///< CA*netII parent cache: only 3 clients — the limit case
};

/// All presets in Table 1 order.
std::vector<Preset> all_presets();

std::string preset_name(Preset p);

/// Generator parameters for a preset.
GeneratorParams preset_params(Preset p);

/// Generates the preset's trace (deterministic: the preset fixes the seed).
Trace load_preset(Preset p);

/// Scales request count and universe by `factor` (for quick tests: 0.1
/// produces a 10x smaller but same-shaped trace).
Trace load_preset_scaled(Preset p, double factor);

}  // namespace baps::trace
