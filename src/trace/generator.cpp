#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <vector>

#include "trace/zipf.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace baps::trace {
namespace {

/// Per-client re-reference stack: a bounded LRU of recently requested docs.
class HistoryStack {
 public:
  explicit HistoryStack(std::uint32_t capacity) : capacity_(capacity) {}

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Most-recent-first access by stack position.
  DocId at_depth(std::size_t depth) const { return entries_[depth]; }

  void touch(DocId doc) {
    // Linear scan is fine: stacks are ≤ a few hundred entries and usually
    // hit near the front (that is the whole point of temporal locality).
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i] == doc) {
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    entries_.push_front(doc);
    if (entries_.size() > capacity_) entries_.pop_back();
  }

 private:
  std::uint32_t capacity_;
  std::deque<DocId> entries_;
};

}  // namespace

Trace generate_trace(const std::string& name, const GeneratorParams& p,
                     std::uint64_t seed) {
  BAPS_REQUIRE(p.num_clients > 0, "need at least one client");
  BAPS_REQUIRE(p.shared_docs > 0, "need a shared document universe");
  BAPS_REQUIRE(p.shared_prob >= 0.0 && p.shared_prob <= 1.0,
               "shared_prob must be a probability");
  BAPS_REQUIRE(p.temporal_prob >= 0.0 && p.temporal_prob < 1.0,
               "temporal_prob must be in [0,1)");
  BAPS_REQUIRE(p.mean_interarrival > 0.0, "mean interarrival must be positive");

  baps::SplitMix64 mixer(seed);
  baps::Xoshiro256 rng(mixer.next());
  const SizeModel size_model(p.size_model, mixer.next());

  // Document id layout: shared docs first, then each client's private block.
  const DocId num_docs =
      p.shared_docs + static_cast<DocId>(p.num_clients) *
                          p.private_docs_per_client;
  const auto private_base = [&](ClientId c) {
    return p.shared_docs +
           static_cast<DocId>(c) * p.private_docs_per_client;
  };

  const ZipfSampler shared_pop(p.shared_docs, p.shared_alpha);
  // Private universes share one sampler (same size and exponent per client).
  const ZipfSampler private_pop(
      p.private_docs_per_client ? p.private_docs_per_client : 1,
      p.private_alpha);
  const ZipfSampler client_rates(p.num_clients, p.client_rate_alpha);
  const ZipfSampler stack_dist(p.history_depth, p.stack_alpha);

  std::vector<HistoryStack> history(p.num_clients,
                                    HistoryStack(p.history_depth));
  std::unordered_map<DocId, std::uint32_t> version;  // mutated docs only

  // Final size of a document at a given mutation version: the raw size
  // model draw, scaled by the popularity/size anti-correlation. Document ids
  // are rank-ordered within their universe (shared, or one client's private
  // block), so the rank is recoverable from the id. Without this skew the
  // byte hit ratio would track the hit ratio instead of trailing it.
  const auto sized = [&](DocId doc, std::uint32_t v) {
    std::uint64_t size = size_model.size_of(doc, v);
    if (p.size_popularity_exponent <= 0.0) return size;
    DocId rank;
    double universe;
    if (doc < p.shared_docs) {
      rank = doc;
      universe = static_cast<double>(p.shared_docs);
    } else {
      rank = (doc - p.shared_docs) % p.private_docs_per_client;
      universe = static_cast<double>(p.private_docs_per_client);
    }
    const double rel = static_cast<double>(rank + 1) / (0.5 * universe);
    const double factor = std::clamp(
        std::pow(rel, p.size_popularity_exponent), p.size_factor_min,
        p.size_factor_max);
    return std::max<std::uint64_t>(
        p.size_model.min_size,
        static_cast<std::uint64_t>(static_cast<double>(size) * factor));
  };
  const auto version_of = [&](DocId doc) -> std::uint32_t {
    const auto it = version.find(doc);
    return it != version.end() ? it->second : 0;
  };

  std::vector<Request> requests;
  requests.reserve(p.num_requests);
  double clock = 0.0;

  // Session model: the active client persists with probability
  // 1 - 1/session_mean, otherwise a new session starts at a rate-sampled
  // client. Long-run per-client request shares still follow client_rates.
  BAPS_REQUIRE(p.session_mean_requests >= 1.0,
               "session length must be at least one request");
  const double session_continue = 1.0 - 1.0 / p.session_mean_requests;
  auto active_client = static_cast<ClientId>(client_rates.sample(rng));

  for (std::uint64_t i = 0; i < p.num_requests; ++i) {
    // Exponential inter-arrival times → Poisson arrivals in aggregate.
    clock += -p.mean_interarrival * std::log(1.0 - rng.uniform());
    if (rng.uniform() >= session_continue) {
      active_client = static_cast<ClientId>(client_rates.sample(rng));
    }
    const ClientId client = active_client;

    DocId doc;
    HistoryStack& stack = history[client];
    if (rng.uniform() < p.temporal_prob && !stack.empty()) {
      // Re-reference: Zipf over stack distance, clamped to current depth.
      // Re-references of bulk downloads are rare in real browsing: re-draw
      // (bounded) when the pick lands on a large document.
      for (int attempt = 0; attempt < 4; ++attempt) {
        std::size_t depth = stack_dist.sample(rng);
        if (depth >= stack.size()) depth = stack.size() - 1;
        doc = stack.at_depth(depth);
        if (attempt == 3 || p.large_doc_threshold == 0 ||
            sized(doc, version_of(doc)) <= p.large_doc_threshold ||
            rng.uniform() >= p.large_rereference_reject) {
          break;
        }
      }
    } else if (p.private_docs_per_client == 0 ||
               rng.uniform() < p.shared_prob) {
      doc = shared_pop.sample(rng);
    } else {
      doc = private_base(client) + private_pop.sample(rng);
    }
    stack.touch(doc);

    std::uint32_t v = version_of(doc);
    if (p.mutation_prob > 0.0 && rng.uniform() < p.mutation_prob) {
      version[doc] = ++v;
    }
    requests.push_back(Request{clock, client, doc, sized(doc, v)});
  }

  return Trace(name, p.num_clients, num_docs, std::move(requests));
}

}  // namespace baps::trace
