#include "trace/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace baps::trace {

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha) : alpha_(alpha) {
  BAPS_REQUIRE(n > 0, "zipf universe must be nonempty");
  BAPS_REQUIRE(alpha >= 0.0, "zipf alpha must be non-negative");
  cdf_.resize(n);
  double running = 0.0;
  for (std::uint64_t r = 0; r < n; ++r) {
    running += std::pow(static_cast<double>(r + 1), -alpha);
    cdf_[r] = running;
  }
  const double total = running;
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint64_t ZipfSampler::sample(Xoshiro256& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::uint64_t rank) const {
  BAPS_REQUIRE(rank < cdf_.size(), "rank out of range");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace baps::trace
