// Document size model.
//
// Web response sizes are heavy-tailed: the bulk follows a lognormal body and
// the tail a Pareto distribution (Barford & Crovella's SURGE model). Each
// document's size is a pure function of (doc id, seed) so the generator never
// stores a size table; mutations (the paper counts a size change as a miss)
// derive a new size from (doc id, version).
#pragma once

#include <cstdint>

#include "trace/record.hpp"

namespace baps::trace {

struct SizeModelParams {
  double lognormal_mu = 8.5;      ///< ln-bytes mean (~4.9 KB median)
  double lognormal_sigma = 1.3;   ///< ln-bytes stddev
  double pareto_tail_prob = 0.05; ///< fraction of docs drawn from the tail
  double pareto_alpha = 1.3;      ///< tail index (alpha > 1 → finite mean)
  std::uint64_t pareto_min = 64 * 1024;  ///< tail minimum, bytes
  std::uint64_t min_size = 64;           ///< floor, bytes
  std::uint64_t max_size = 512ULL << 20; ///< cap, bytes (sanity bound)
};

class SizeModel {
 public:
  SizeModel(SizeModelParams params, std::uint64_t seed)
      : params_(params), seed_(seed) {}

  /// Size in bytes of document `doc` at mutation version `version`.
  /// Deterministic; version 0 is the original document.
  std::uint64_t size_of(DocId doc, std::uint32_t version = 0) const;

  const SizeModelParams& params() const { return params_; }

 private:
  SizeModelParams params_;
  std::uint64_t seed_;
};

}  // namespace baps::trace
