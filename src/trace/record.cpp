#include "trace/record.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"

namespace baps::trace {

Trace::Trace(std::string name, std::uint32_t num_clients, DocId num_docs,
             std::vector<Request> requests, std::vector<std::string> urls)
    : name_(std::move(name)),
      num_clients_(num_clients),
      num_docs_(num_docs),
      requests_(std::move(requests)),
      urls_(std::move(urls)) {
  BAPS_REQUIRE(num_clients_ > 0 || requests_.empty(),
               "nonempty trace needs at least one client");
  BAPS_REQUIRE(urls_.empty() || urls_.size() >= num_docs_,
               "url table must cover the document universe");
  for (const Request& r : requests_) {
    BAPS_REQUIRE(r.client < num_clients_, "client id out of range");
    BAPS_REQUIRE(r.doc < num_docs_, "doc id out of range");
  }
}

std::string Trace::url_of(DocId doc) const {
  BAPS_REQUIRE(doc < num_docs_, "doc id out of range");
  if (!urls_.empty()) return urls_[doc];
  return synthetic_url(doc);
}

Trace Trace::restrict_clients(double fraction) const {
  BAPS_REQUIRE(fraction > 0.0 && fraction <= 1.0,
               "client fraction must be in (0,1]");
  const auto keep = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             static_cast<double>(num_clients_) * fraction + 0.5));
  std::vector<Request> kept;
  kept.reserve(static_cast<std::size_t>(
      static_cast<double>(requests_.size()) * fraction * 1.1));
  for (const Request& r : requests_) {
    if (r.client < keep) kept.push_back(r);
  }
  return Trace(name_ + "@" + std::to_string(keep) + "c", keep, num_docs_,
               std::move(kept), urls_);
}

std::string synthetic_url(DocId doc) {
  // Spread documents over a plausible set of origin servers so URL strings
  // look like the real thing (useful in the runtime engine and index tests).
  const DocId server = doc % 997;
  return "http://server" + std::to_string(server) + ".example.com/doc/" +
         std::to_string(doc) + ".html";
}

}  // namespace baps::trace
