#include "trace/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/assert.hpp"

namespace baps::trace {
namespace {

/// Fenwick tree over access positions; supports point update and suffix sum.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t pos, int delta) {
    for (std::size_t i = pos + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Sum of [0, pos].
  std::int64_t prefix(std::size_t pos) const {
    std::int64_t s = 0;
    for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace

double PopularityCurve::head_mass(double fraction) const {
  BAPS_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
               "fraction must be in [0,1]");
  if (counts.empty() || total_requests == 0) return 0.0;
  const auto head = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(counts.size())));
  std::uint64_t mass = 0;
  for (std::size_t i = 0; i < head && i < counts.size(); ++i) {
    mass += counts[i];
  }
  return static_cast<double>(mass) / static_cast<double>(total_requests);
}

double PopularityCurve::fitted_zipf_alpha(std::size_t ranks) const {
  const std::size_t n = std::min(ranks, counts.size());
  if (n < 2) return 0.0;
  // Least squares on (x, y) = (log(rank+1), log(count)); slope = -alpha.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t used = 0;
  for (std::size_t r = 0; r < n; ++r) {
    if (counts[r] == 0) break;
    const double x = std::log(static_cast<double>(r + 1));
    const double y = std::log(static_cast<double>(counts[r]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++used;
  }
  if (used < 2) return 0.0;
  const double m = static_cast<double>(used);
  const double denom = m * sxx - sx * sx;
  if (denom <= 0.0) return 0.0;
  return -(m * sxy - sx * sy) / denom;
}

PopularityCurve popularity_of(const Trace& trace) {
  std::unordered_map<DocId, std::uint64_t> counts;
  for (const Request& r : trace.requests()) ++counts[r.doc];
  PopularityCurve out;
  out.total_requests = trace.size();
  out.counts.reserve(counts.size());
  for (const auto& [doc, n] : counts) out.counts.push_back(n);
  std::sort(out.counts.begin(), out.counts.end(), std::greater<>());
  return out;
}

double StackDistanceHistogram::median_distance() const {
  if (rereferences == 0) return 0.0;
  const std::uint64_t target = (rereferences + 1) / 2;
  std::uint64_t running = 0;
  for (std::size_t k = 0; k < buckets.size(); ++k) {
    running += buckets[k];
    if (running >= target) return std::pow(2.0, static_cast<double>(k));
  }
  return std::pow(2.0, static_cast<double>(buckets.size()));
}

StackDistanceHistogram stack_distances_of(const Trace& trace) {
  StackDistanceHistogram out;
  const std::size_t n = trace.size();
  Fenwick active(n);  // 1 at the most-recent access position of each doc
  std::unordered_map<DocId, std::size_t> last_pos;
  last_pos.reserve(n / 2);

  for (std::size_t t = 0; t < n; ++t) {
    const DocId doc = trace.requests()[t].doc;
    const auto it = last_pos.find(doc);
    if (it == last_pos.end()) {
      ++out.cold_misses;
    } else {
      // Stack distance = #distinct docs accessed strictly after last_pos =
      // suffix count of active markers in (last_pos, t).
      const std::int64_t after =
          active.prefix(t > 0 ? t - 1 : 0) - active.prefix(it->second);
      const auto distance = static_cast<std::uint64_t>(after);
      std::size_t bucket = 0;
      while ((1ULL << (bucket + 1)) <= distance + 1) ++bucket;
      if (out.buckets.size() <= bucket) out.buckets.resize(bucket + 1, 0);
      ++out.buckets[bucket];
      ++out.rereferences;
      active.add(it->second, -1);
    }
    active.add(t, +1);
    last_pos[doc] = t;
  }
  return out;
}

SharingStats sharing_of(const Trace& trace) {
  std::unordered_map<DocId, std::unordered_set<ClientId>> clients_of;
  std::unordered_map<DocId, std::uint64_t> requests_of;
  for (const Request& r : trace.requests()) {
    clients_of[r.doc].insert(r.client);
    ++requests_of[r.doc];
  }
  SharingStats out;
  out.total_requests = trace.size();
  out.unique_docs = clients_of.size();
  std::uint64_t client_sum = 0;
  for (const auto& [doc, clients] : clients_of) {
    client_sum += clients.size();
    if (clients.size() >= 2) {
      ++out.shared_docs;
      out.requests_to_shared += requests_of.at(doc);
    }
  }
  if (out.unique_docs > 0) {
    out.mean_clients_per_doc = static_cast<double>(client_sum) /
                               static_cast<double>(out.unique_docs);
  }
  return out;
}

}  // namespace baps::trace
