#include "trace/log_parser.hpp"

#include <cmath>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace baps::trace {
namespace {

/// Interns strings to dense ids in first-appearance order.
class Interner {
 public:
  std::uint64_t id_of(const std::string& s) {
    auto [it, inserted] = ids_.try_emplace(s, values_.size());
    if (inserted) values_.push_back(s);
    return it->second;
  }
  std::vector<std::string> take_values() { return std::move(values_); }
  std::size_t size() const { return values_.size(); }

 private:
  std::unordered_map<std::string, std::uint64_t> ids_;
  std::vector<std::string> values_;
};

struct RawRecord {
  double timestamp;
  std::string client;
  std::string url;
  std::uint64_t size;
};

ParseResult assemble(std::vector<RawRecord> raw, const std::string& name,
                     std::uint64_t parsed, std::uint64_t skipped) {
  Interner clients;
  Interner urls;
  std::vector<Request> requests;
  requests.reserve(raw.size());
  double t0 = raw.empty() ? 0.0 : raw.front().timestamp;
  for (const RawRecord& r : raw) {
    if (r.timestamp < t0) t0 = r.timestamp;
  }
  for (RawRecord& r : raw) {
    requests.push_back(Request{
        r.timestamp - t0, static_cast<ClientId>(clients.id_of(r.client)),
        urls.id_of(r.url), r.size});
  }
  const auto num_clients = static_cast<std::uint32_t>(clients.size());
  const auto num_docs = static_cast<DocId>(urls.size());
  ParseResult out{Trace(name, num_clients, num_docs, std::move(requests),
                        urls.take_values()),
                  parsed, skipped};
  return out;
}

/// Lines from dirty logs that can never be a valid record: embedded NULs
/// (binary garbage, truncated writes) would silently corrupt interned client
/// and URL strings, so they are skipped outright.
bool line_is_binary(const std::string& line) {
  return line.find('\0') != std::string::npos;
}

}  // namespace

ParseResult parse_squid_log(std::istream& in, const std::string& trace_name) {
  std::vector<RawRecord> raw;
  std::uint64_t parsed = 0, skipped = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line_is_binary(line)) {
      ++skipped;
      continue;
    }
    std::istringstream ls(line);
    double time_s;
    long long elapsed_ms;
    std::string client, code_status, method, url;
    long long bytes;
    if (!(ls >> time_s >> elapsed_ms >> client >> code_status >> bytes >>
          method >> url) ||
        !std::isfinite(time_s)) {
      ++skipped;
      continue;
    }
    // Only completed document fetches are simulated: GET with a body.
    if (method != "GET" || bytes <= 0) {
      ++skipped;
      continue;
    }
    raw.push_back(RawRecord{time_s, std::move(client), std::move(url),
                            static_cast<std::uint64_t>(bytes)});
    ++parsed;
  }
  return assemble(std::move(raw), trace_name, parsed, skipped);
}

ParseResult parse_plain_log(std::istream& in, const std::string& trace_name) {
  std::vector<RawRecord> raw;
  std::uint64_t parsed = 0, skipped = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line_is_binary(line)) {
      ++skipped;
      continue;
    }
    std::istringstream ls(line);
    double time_s;
    std::string client, url;
    long long bytes;
    if (!(ls >> time_s >> client >> url >> bytes) || bytes <= 0 ||
        !std::isfinite(time_s)) {
      ++skipped;
      continue;
    }
    raw.push_back(RawRecord{time_s, std::move(client), std::move(url),
                            static_cast<std::uint64_t>(bytes)});
    ++parsed;
  }
  return assemble(std::move(raw), trace_name, parsed, skipped);
}

void write_plain_log(const Trace& trace, std::ostream& out) {
  out << "# baps plain trace: " << trace.name() << '\n';
  for (const Request& r : trace.requests()) {
    out << r.timestamp << " c" << r.client << ' ' << trace.url_of(r.doc) << ' '
        << r.size << '\n';
  }
}

}  // namespace baps::trace
