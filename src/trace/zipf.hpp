// Zipf-like discrete sampler.
//
// Web document popularity is famously Zipf-like (P(rank r) ∝ 1/r^alpha with
// alpha ≈ 0.6–0.9 for proxy traces). We precompute the CDF once and sample by
// binary search: O(n) setup, O(log n) per draw, deterministic in the caller's
// RNG.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace baps::trace {

class ZipfSampler {
 public:
  /// Ranks are 0-based: rank 0 is the most popular of `n` items.
  ZipfSampler(std::uint64_t n, double alpha);

  std::uint64_t n() const { return static_cast<std::uint64_t>(cdf_.size()); }
  double alpha() const { return alpha_; }

  /// Draws a rank in [0, n).
  std::uint64_t sample(Xoshiro256& rng) const;

  /// Probability mass of a rank (for tests and analytic checks).
  double pmf(std::uint64_t rank) const;

 private:
  double alpha_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r)
};

}  // namespace baps::trace
