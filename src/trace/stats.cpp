#include "trace/stats.hpp"

#include <unordered_map>

#include "util/assert.hpp"

namespace baps::trace {

std::uint64_t TraceStats::avg_infinite_browser_bytes() const {
  if (infinite_browser_bytes.empty()) return 0;
  std::uint64_t sum = 0;
  for (std::uint64_t b : infinite_browser_bytes) sum += b;
  return sum / infinite_browser_bytes.size();
}

TraceStats compute_stats(const Trace& trace) {
  TraceStats s;
  s.num_requests = trace.size();
  s.num_clients = trace.num_clients();
  s.doc_universe = trace.num_docs();
  s.infinite_browser_bytes.assign(trace.num_clients(), 0);
  s.distinct_docs_per_client.assign(trace.num_clients(), 0);

  // doc -> last observed size (global, and per client for browser sizing).
  std::unordered_map<DocId, std::uint64_t> last_size;
  // (client, doc) -> last size that client saw. Keyed by a packed 64-bit id;
  // doc ids stay well below 2^40 so the packing is collision-free.
  std::unordered_map<std::uint64_t, std::uint64_t> client_last_size;
  const auto pack = [](ClientId c, DocId d) {
    BAPS_REQUIRE(d < (1ULL << 40), "doc id too large to pack");
    return (static_cast<std::uint64_t>(c) << 40) | d;
  };

  std::uint64_t hit_requests = 0;
  std::uint64_t hit_bytes = 0;

  for (const Request& r : trace.requests()) {
    s.total_bytes += r.size;
    if (r.timestamp > s.duration_seconds) s.duration_seconds = r.timestamp;

    // Global infinite-cache hit: seen before at the same size.
    auto [it, inserted] = last_size.try_emplace(r.doc, r.size);
    if (!inserted) {
      if (it->second == r.size) {
        ++hit_requests;
        hit_bytes += r.size;
      } else {
        it->second = r.size;  // mutated: refreshed copy
      }
    }

    // Per-client accounting for infinite browser cache sizes.
    auto [cit, cinserted] = client_last_size.try_emplace(pack(r.client, r.doc),
                                                         r.size);
    if (cinserted) {
      s.infinite_browser_bytes[r.client] += r.size;
      ++s.distinct_docs_per_client[r.client];
    } else if (cit->second != r.size) {
      // Replace the stale copy: adjust the byte account to the new size.
      s.infinite_browser_bytes[r.client] += r.size;
      s.infinite_browser_bytes[r.client] -= cit->second;
      cit->second = r.size;
    }
  }

  s.unique_docs = last_size.size();
  for (const auto& [doc, size] : last_size) s.infinite_cache_bytes += size;

  if (s.num_requests > 0) {
    s.max_hit_ratio = static_cast<double>(hit_requests) /
                      static_cast<double>(s.num_requests);
  }
  if (s.total_bytes > 0) {
    s.max_byte_hit_ratio = static_cast<double>(hit_bytes) /
                           static_cast<double>(s.total_bytes);
  }
  return s;
}

}  // namespace baps::trace
