// Compact binary trace serialization.
//
// The plain-text format (log_parser.hpp) is for interop; this one is for
// speed and fidelity: bit-exact timestamps (the text path rounds), packed
// 28-byte records, and the URL table stored only when the trace carries
// real (parsed) URLs. A day-scale trace loads in milliseconds, so bench
// harnesses can cache generated workloads across runs.
//
// Layout (little-endian):
//   magic "BAPSTRC1" | u32 name_len | name bytes
//   u32 num_clients | u64 num_docs | u64 num_requests | u64 num_urls
//   requests: (f64 timestamp, u32 client, u64 doc, u64 size) × num_requests
//   urls:     (u32 len, bytes) × num_urls        (num_urls is 0 or num_docs)
#pragma once

#include <iosfwd>

#include "trace/record.hpp"

namespace baps::trace {

void write_binary(const Trace& trace, std::ostream& out);

/// Throws InvariantError on bad magic or a truncated/inconsistent stream.
Trace read_binary(std::istream& in);

}  // namespace baps::trace
