// Shard routing for the shared-nothing replay engine (sim/sharded_replay)
// and any future multi-core/multi-proxy partitioning: a key (document id,
// client id, digest prefix) maps to one of N shards by splitmix64 hash, and
// a byte budget splits across shards with no rounding loss.
//
// The hash is util::mix_u64 — the same finalizer the flat tables probe
// with — so dense sequential ids spread evenly instead of striping.
#pragma once

#include <cstdint>

#include "util/assert.hpp"
#include "util/flat_map.hpp"

namespace baps::util {

/// Owning shard of `key` among `shards` equal partitions. One shard is the
/// degenerate case: everything routes to shard 0 without hashing, so an
/// N=1 sharded run touches exactly the state an unsharded run would.
inline std::uint32_t shard_of(std::uint64_t key, std::uint32_t shards) {
  BAPS_REQUIRE(shards > 0, "need at least one shard");
  if (shards == 1) return 0;
  return static_cast<std::uint32_t>(mix_u64(key) % shards);
}

/// `shard`'s slice of a `total`-byte budget: total/shards, with the
/// remainder spread one byte each over the first (total % shards) shards,
/// so the slices always sum to exactly `total` and the N=1 slice IS the
/// total.
inline std::uint64_t slice_bytes(std::uint64_t total, std::uint32_t shard,
                                 std::uint32_t shards) {
  BAPS_REQUIRE(shard < shards, "shard id out of range");
  return total / shards + (shard < total % shards ? 1 : 0);
}

}  // namespace baps::util
