// Declarative command-line parsing shared by the CLI drivers, the bench
// harnesses, and the network daemons. Options are registered with a target
// (flag, string, number, or a custom callback for list/enum values) and
// parse() walks argv once: unknown options, missing values, and malformed
// numbers are errors, `--help`/`-h` sets help_requested() and short-circuits.
// usage() renders the registered options in registration order.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace baps::util {

/// Splits on `sep`, dropping empty items ("a,,b" → {"a","b"}).
inline std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string item;
  for (char c : s) {
    if (c == sep) {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item.push_back(c);
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

/// Whole-string numeric parses: trailing junk is a failure, not a truncation.
inline bool parse_number(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

inline bool parse_number(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s[0] == '-' || s[0] == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  // strtoull saturates to ULLONG_MAX with ERANGE on overflow; reject rather
  // than silently clamp.
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

/// Byte sizes with optional binary suffix: "4096", "512k", "64M", "2g"
/// (case-insensitive; k/m/g are powers of 1024). Overflow-checked — a value
/// whose scaled result would wrap uint64_t is rejected, not truncated.
inline bool parse_byte_size(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t mult = 1;
  std::size_t digits = s.size();
  switch (s.back() | 0x20) {  // ASCII tolower; leaves digits unchanged
    case 'k': mult = 1ULL << 10; --digits; break;
    case 'm': mult = 1ULL << 20; --digits; break;
    case 'g': mult = 1ULL << 30; --digits; break;
    default: break;
  }
  std::uint64_t v = 0;
  if (!parse_number(s.substr(0, digits), &v)) return false;
  if (mult != 1 && v > std::numeric_limits<std::uint64_t>::max() / mult) {
    return false;
  }
  *out = v * mult;
  return true;
}

/// Durations with optional unit suffix: "1s", "250ms", "2m" (minutes), or a
/// bare number meaning seconds ("0.5"). Result is seconds; negative values
/// are rejected.
inline bool parse_duration_seconds(const std::string& s, double* out) {
  if (s.empty()) return false;
  double scale = 1.0;
  std::size_t digits = s.size();
  if (s.size() >= 2 && s.compare(s.size() - 2, 2, "ms") == 0) {
    scale = 1e-3;
    digits = s.size() - 2;
  } else if (s.back() == 's') {
    digits = s.size() - 1;
  } else if (s.back() == 'm') {
    scale = 60.0;
    digits = s.size() - 1;
  }
  double v = 0.0;
  if (!parse_number(s.substr(0, digits), &v)) return false;
  if (v < 0.0) return false;
  *out = v * scale;
  return true;
}

class ArgParser {
 public:
  explicit ArgParser(std::string program, std::string summary = {})
      : program_(std::move(program)), summary_(std::move(summary)) {}

  ArgParser& flag(const std::string& name, bool* out, const std::string& help) {
    add(name, "", help, [out](const std::string&) {
      *out = true;
      return true;
    }, /*takes_value=*/false);
    return *this;
  }

  ArgParser& option(const std::string& name, std::string* out,
                    const std::string& value_name, const std::string& help) {
    add(name, value_name, help, [out](const std::string& v) {
      *out = v;
      return true;
    }, /*takes_value=*/true);
    return *this;
  }

  ArgParser& option(const std::string& name, double* out,
                    const std::string& value_name, const std::string& help) {
    add(name, value_name, help, [out](const std::string& v) {
      return parse_number(v, out);
    }, /*takes_value=*/true);
    return *this;
  }

  ArgParser& option(const std::string& name, std::uint64_t* out,
                    const std::string& value_name, const std::string& help) {
    add(name, value_name, help, [out](const std::string& v) {
      return parse_number(v, out);
    }, /*takes_value=*/true);
    return *this;
  }

  /// uint64 byte quantity accepting the k/m/g suffixes of parse_byte_size
  /// ("--store-capacity 512m"). Plain digit strings parse identically to
  /// option(uint64_t*).
  ArgParser& bytes(const std::string& name, std::uint64_t* out,
                   const std::string& value_name, const std::string& help) {
    add(name, value_name, help, [out](const std::string& v) {
      return parse_byte_size(v, out);
    }, /*takes_value=*/true);
    return *this;
  }

  /// Duration in seconds accepting the s/ms/m suffixes of
  /// parse_duration_seconds ("--ts-interval 250ms"). Bare numbers parse as
  /// seconds, identically to option(double*).
  ArgParser& duration(const std::string& name, double* out,
                      const std::string& value_name, const std::string& help) {
    add(name, value_name, help, [out](const std::string& v) {
      return parse_duration_seconds(v, out);
    }, /*takes_value=*/true);
    return *this;
  }

  ArgParser& option(const std::string& name, std::uint32_t* out,
                    const std::string& value_name, const std::string& help) {
    return bounded(name, out, value_name, help);
  }

  ArgParser& option(const std::string& name, std::uint16_t* out,
                    const std::string& value_name, const std::string& help) {
    return bounded(name, out, value_name, help);
  }

  /// For list/enum values: `fn` consumes the raw value, returning false to
  /// reject it (the parser reports the offending option).
  ArgParser& custom(const std::string& name, const std::string& value_name,
                    const std::string& help,
                    std::function<bool(const std::string&)> fn) {
    add(name, value_name, help, std::move(fn), /*takes_value=*/true);
    return *this;
  }

  /// Opt in to bare (non-option) arguments; without this they stay errors.
  /// Collected in order into positionals(). `value_name` is for usage().
  ArgParser& allow_positionals(const std::string& value_name) {
    positional_name_ = value_name;
    allow_positionals_ = true;
    return *this;
  }

  /// Walks argv. False (with *error) on unknown options, missing or rejected
  /// values. `--help`/`-h` sets help_requested() and stops parsing.
  bool parse(int argc, char** argv, std::string* error) {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--help" || a == "-h") {
        help_requested_ = true;
        return true;
      }
      Opt* opt = find(a);
      if (opt == nullptr) {
        if (allow_positionals_ && a.rfind("--", 0) != 0) {
          positionals_.push_back(a);
          continue;
        }
        if (error != nullptr) *error = "unknown argument: " + a;
        return false;
      }
      std::string value;
      if (opt->takes_value) {
        if (i + 1 >= argc) {
          if (error != nullptr) *error = a + " needs a value";
          return false;
        }
        value = argv[++i];
      }
      if (!opt->apply(value)) {
        if (error != nullptr) *error = "bad value for " + a + ": " + value;
        return false;
      }
    }
    return true;
  }

  bool help_requested() const { return help_requested_; }
  const std::vector<std::string>& positionals() const { return positionals_; }

  std::string usage() const {
    std::string out = "usage: " + program_ + " [options]";
    if (allow_positionals_) out += " [" + positional_name_ + " ...]";
    out += "\n";
    if (!summary_.empty()) out += summary_ + "\n";
    out += "\noptions:\n";
    for (const Opt& opt : opts_) {
      std::string left = "  " + opt.name;
      if (opt.takes_value) left += " " + opt.value_name;
      if (left.size() < 26) left.resize(26, ' ');
      out += left + " " + opt.help + "\n";
    }
    std::string help_line = "  --help, -h";
    help_line.resize(26, ' ');
    out += help_line + " print this message\n";
    return out;
  }

 private:
  struct Opt {
    std::string name;
    std::string value_name;
    std::string help;
    std::function<bool(const std::string&)> apply;
    bool takes_value = false;
  };

  template <typename T>
  ArgParser& bounded(const std::string& name, T* out,
                     const std::string& value_name, const std::string& help) {
    add(name, value_name, help, [out](const std::string& v) {
      std::uint64_t wide = 0;
      if (!parse_number(v, &wide)) return false;
      if (wide > std::numeric_limits<T>::max()) return false;
      *out = static_cast<T>(wide);
      return true;
    }, /*takes_value=*/true);
    return *this;
  }

  void add(const std::string& name, const std::string& value_name,
           const std::string& help, std::function<bool(const std::string&)> fn,
           bool takes_value) {
    opts_.push_back(Opt{name, value_name, help, std::move(fn), takes_value});
  }

  Opt* find(const std::string& name) {
    for (Opt& opt : opts_) {
      if (opt.name == name) return &opt;
    }
    return nullptr;
  }

  std::string program_;
  std::string summary_;
  std::vector<Opt> opts_;
  std::vector<std::string> positionals_;
  std::string positional_name_;
  bool allow_positionals_ = false;
  bool help_requested_ = false;
};

}  // namespace baps::util
