// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library takes an explicit 64-bit seed so
// traces and simulations reproduce bit-for-bit. We use SplitMix64 for seeding
// and xoshiro256** as the workhorse generator (fast, tiny state, excellent
// statistical quality — far better than std::minstd and cheaper than
// std::mt19937_64).
#pragma once

#include <array>
#include <cstdint>

namespace baps {

/// SplitMix64: stateless-ish mixer used to expand one seed into many streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library's standard PRNG. Satisfies
/// std::uniform_random_bit_generator so it plugs into <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). 53 bits of entropy.
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method: unbiased and branch-light.
    std::uint64_t x = (*this)();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<unsigned __int128>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace baps
