// Open-addressing hash containers for the simulation hot path.
//
// The per-request path (ObjectCache entries, LRU slot lookup, BrowserIndex
// per-client sets) was built on node-allocating std::unordered_map /
// std::unordered_set: every lookup chased a bucket pointer to a heap node.
// FlatMap stores keys and values in two parallel arrays with linear probing
// and backward-shift deletion (no tombstones), so a lookup is one mixed hash
// plus a short scan of contiguous keys — and reserve() pre-sizes the table
// so trace replay never rehashes mid-run.
//
// Contract:
//  * keys are u64; the value 2^64-1 is reserved as the empty-slot sentinel
//    (document ids, client ids, and slab indices are all dense small
//    integers, far below it);
//  * max load factor 3/4, capacity is a power of two (min 16);
//  * pointers returned by find() are invalidated by insert/erase/reserve;
//  * iteration order is unspecified (it is table order) — callers that need
//    deterministic cross-run behavior must not depend on it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace baps::util {

/// splitmix64 finalizer: cheap, well-distributed mixing for dense integer
/// keys (sequential ids would otherwise probe into the same neighborhood).
inline std::uint64_t mix_u64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

template <typename V>
class FlatMap {
 public:
  static constexpr std::uint64_t kEmptyKey = ~0ULL;

  FlatMap() = default;
  FlatMap(const FlatMap&) = default;
  FlatMap& operator=(const FlatMap&) = default;
  // Moves leave the source valid and empty (vector moves already drain the
  // arrays; the size must follow them).
  FlatMap(FlatMap&& other) noexcept
      : keys_(std::move(other.keys_)),
        vals_(std::move(other.vals_)),
        size_(other.size_) {
    other.size_ = 0;
  }
  FlatMap& operator=(FlatMap&& other) noexcept {
    if (this != &other) {
      keys_ = std::move(other.keys_);
      vals_ = std::move(other.vals_);
      size_ = other.size_;
      other.size_ = 0;
    }
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Current slot count (for footprint accounting in tests).
  std::size_t capacity() const { return keys_.size(); }

  /// Pre-sizes the table so `expected` entries fit without rehashing.
  void reserve(std::size_t expected) {
    // `cap <<= 1` would wrap to 0 (and loop forever) before `cap * 3 / 4`
    // could ever reach an `expected` near SIZE_MAX; reject such sizes up
    // front. `cap / 4 * 3` is exact (cap is a multiple of 4) and cannot
    // overflow, unlike the naive `cap * 3 / 4`.
    BAPS_REQUIRE(expected <= std::size_t{1} << 62,
                 "flat map reserve size overflows the table");
    std::size_t cap = kMinCapacity;
    while (cap / 4 * 3 < expected) cap <<= 1;
    if (cap > keys_.size()) rehash(cap);
  }

  void clear() {
    keys_.assign(keys_.size(), kEmptyKey);
    for (V& v : vals_) v = V{};  // move-assign: V need not be copyable
    size_ = 0;
  }

  V* find(std::uint64_t key) {
    if (size_ == 0) return nullptr;
    const std::size_t mask = keys_.size() - 1;
    for (std::size_t i = mix_u64(key) & mask;; i = (i + 1) & mask) {
      if (keys_[i] == kEmptyKey) return nullptr;
      if (keys_[i] == key) return &vals_[i];
    }
  }
  const V* find(std::uint64_t key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }
  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  /// Inserts (key, value); returns false (leaving the map unchanged) if the
  /// key is already present.
  bool insert(std::uint64_t key, V value) {
    BAPS_REQUIRE(key != kEmptyKey, "flat map key sentinel is reserved");
    if ((size_ + 1) * 4 > keys_.size() * 3) grow();
    const std::size_t mask = keys_.size() - 1;
    for (std::size_t i = mix_u64(key) & mask;; i = (i + 1) & mask) {
      if (keys_[i] == key) return false;
      if (keys_[i] == kEmptyKey) {
        keys_[i] = key;
        vals_[i] = std::move(value);
        ++size_;
        return true;
      }
    }
  }

  /// Removes a key via backward-shift deletion; returns false if absent.
  /// `removed` (when non-null) receives the erased value — one probe where
  /// find-then-erase would take two.
  bool erase(std::uint64_t key, V* removed = nullptr) {
    if (size_ == 0) return false;
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = mix_u64(key) & mask;
    while (true) {
      if (keys_[i] == kEmptyKey) return false;
      if (keys_[i] == key) break;
      i = (i + 1) & mask;
    }
    if (removed != nullptr) *removed = std::move(vals_[i]);
    // Shift the probe chain back over the hole so no tombstone is needed:
    // any entry displaced at least as far as the hole moves into it.
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (keys_[j] == kEmptyKey) break;
      const std::size_t ideal = mix_u64(keys_[j]) & mask;
      if (((j - ideal) & mask) >= ((j - i) & mask)) {
        keys_[i] = keys_[j];
        vals_[i] = std::move(vals_[j]);
        i = j;
      }
    }
    keys_[i] = kEmptyKey;
    vals_[i] = V{};
    --size_;
    return true;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmptyKey) fn(keys_[i], vals_[i]);
    }
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  void grow() { rehash(keys_.empty() ? kMinCapacity : keys_.size() * 2); }

  void rehash(std::size_t new_cap) {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_vals = std::move(vals_);
    keys_.assign(new_cap, kEmptyKey);
    vals_ = std::vector<V>(new_cap);  // default-construct: V need not copy
    const std::size_t mask = new_cap - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmptyKey) continue;
      std::size_t j = mix_u64(old_keys[i]) & mask;
      while (keys_[j] != kEmptyKey) j = (j + 1) & mask;
      keys_[j] = old_keys[i];
      vals_[j] = std::move(old_vals[i]);
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<V> vals_;
  std::size_t size_ = 0;
};

/// Set view over FlatMap: u64 membership with the same probing and reserve
/// semantics (the one-byte payload array is never touched on probe).
class FlatSet {
 public:
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void reserve(std::size_t expected) { map_.reserve(expected); }
  void clear() { map_.clear(); }
  bool insert(std::uint64_t key) { return map_.insert(key, 0); }
  bool erase(std::uint64_t key) { return map_.erase(key); }
  bool contains(std::uint64_t key) const { return map_.contains(key); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each([&](std::uint64_t key, std::uint8_t) { fn(key); });
  }

 private:
  FlatMap<std::uint8_t> map_;
};

}  // namespace baps::util
