#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace baps {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  BAPS_REQUIRE(!header_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  BAPS_REQUIRE(!rows_.empty(), "call row() before adding cells");
  BAPS_REQUIRE(rows_.back().size() < header_.size(),
               "row has more cells than header columns");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::uint64_t value) {
  return cell(std::to_string(value));
}

Table& Table::cell_percent(double ratio01, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << 100.0 * ratio01 << '%';
  return cell(os.str());
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << std::left << std::setw(static_cast<int>(width[c])) << v;
      if (c + 1 < header_.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c], '-');
    if (c + 1 < header_.size()) os << "  ";
  }
  os << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << escape(cells[c]);
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_string();
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t u = 0;
  while (v >= 1024.0 && u + 1 < std::size(kUnits)) {
    v /= 1024.0;
    ++u;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(u == 0 ? 0 : 2) << v << ' '
     << kUnits[u];
  return os.str();
}

std::string format_seconds(double seconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  if (seconds < 1e-6) {
    os << seconds * 1e9 << " ns";
  } else if (seconds < 1e-3) {
    os << seconds * 1e6 << " us";
  } else if (seconds < 1.0) {
    os << seconds * 1e3 << " ms";
  } else {
    os << seconds << " s";
  }
  return os.str();
}

}  // namespace baps
