// Inline-storage vector for the browser index's holder lists.
//
// Most documents are held by 0–2 browsers at any instant (the paper's §4
// sharing analysis), so the per-doc holder list almost never needs a heap
// allocation: N elements live inside the object and only genuinely popular
// documents spill to a heap block. Restricted to trivially copyable element
// types — growth and moves are memcpy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "util/assert.hpp"

namespace baps::util {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is memcpy-based");
  static_assert(N > 0 && N <= 0xFFFF, "inline capacity out of range");

 public:
  SmallVector() {}
  ~SmallVector() { release(); }

  SmallVector(SmallVector&& other) noexcept { steal(other); }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }
  // Holder lists are owned in place by the index; copying one is a bug.
  SmallVector(const SmallVector&) = delete;
  SmallVector& operator=(const SmallVector&) = delete;

  std::uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint32_t capacity() const { return cap_; }
  bool on_heap() const { return cap_ != N; }

  T* data() { return on_heap() ? heap_ : inline_; }
  const T* data() const { return on_heap() ? heap_ : inline_; }
  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  void push_back(T value) {
    if (size_ == cap_) grow();
    data()[size_++] = value;
  }

  void pop_back() {
    BAPS_REQUIRE(size_ > 0, "pop_back on empty SmallVector");
    --size_;
  }

  void clear() { size_ = 0; }

 private:
  void grow() {
    // cap_ is u32: doubling past 2^31 would wrap to 0 and memcpy into a
    // zero-length allocation.
    BAPS_REQUIRE(cap_ <= 0x7FFFFFFFu, "SmallVector capacity overflow");
    const std::uint32_t new_cap = cap_ * 2;
    T* mem = new T[new_cap];
    std::memcpy(mem, data(), sizeof(T) * size_);
    release();
    heap_ = mem;
    cap_ = new_cap;
  }

  void release() {
    if (on_heap()) delete[] heap_;
    cap_ = static_cast<std::uint32_t>(N);
  }

  void steal(SmallVector& other) noexcept {
    size_ = other.size_;
    cap_ = other.cap_;
    if (other.on_heap()) {
      heap_ = other.heap_;
    } else {
      std::memcpy(inline_, other.inline_, sizeof(T) * size_);
    }
    other.size_ = 0;
    other.cap_ = static_cast<std::uint32_t>(N);
  }

  std::uint32_t size_ = 0;
  std::uint32_t cap_ = static_cast<std::uint32_t>(N);
  union {
    T inline_[N];
    T* heap_;
  };
};

}  // namespace baps::util
