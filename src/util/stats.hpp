// Streaming statistics accumulators used throughout the simulator and the
// benchmark harnesses: mean/variance (Welford), min/max, ratio counters, and
// a fixed-resolution histogram good enough for latency distributions.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace baps {

/// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Numerator/denominator pair reported as a percentage; the shape of every
/// hit-ratio metric in the paper.
class RatioCounter {
 public:
  void hit(std::uint64_t weight = 1) {
    hits_ += weight;
    total_ += weight;
  }
  void miss(std::uint64_t weight = 1) { total_ += weight; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t total() const { return total_; }

  /// Ratio in [0,1]; 0 when empty.
  double ratio() const {
    return total_ ? static_cast<double>(hits_) / static_cast<double>(total_)
                  : 0.0;
  }
  double percent() const { return 100.0 * ratio(); }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t total_ = 0;
};

/// Fixed-width linear histogram over [lo, hi); out-of-range samples clamp to
/// the edge buckets so totals always balance.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {
    BAPS_REQUIRE(hi > lo, "histogram range must be nonempty");
    BAPS_REQUIRE(buckets > 0, "histogram needs at least one bucket");
  }

  void add(double x) {
    const double t = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
    if (idx < 0) idx = 0;
    if (idx >= static_cast<std::int64_t>(counts_.size())) {
      idx = static_cast<std::int64_t>(counts_.size()) - 1;
    }
    ++counts_[static_cast<std::size_t>(idx)];
    ++n_;
  }

  std::uint64_t count() const { return n_; }
  const std::vector<std::uint64_t>& buckets() const { return counts_; }

  /// Linear-interpolated quantile, q in [0,1].
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t n_ = 0;
};

}  // namespace baps
