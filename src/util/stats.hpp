// Streaming statistics accumulators used throughout the simulator and the
// benchmark harnesses: mean/variance (Welford), min/max, ratio counters, and
// a fixed-resolution histogram good enough for latency distributions.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace baps {

/// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Numerator/denominator pair reported as a percentage; the shape of every
/// hit-ratio metric in the paper.
class RatioCounter {
 public:
  void hit(std::uint64_t weight = 1) {
    hits_ += weight;
    total_ += weight;
  }
  void miss(std::uint64_t weight = 1) { total_ += weight; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t total() const { return total_; }

  /// Folds another counter's tallies into this one (shard-merge path).
  void merge_from(const RatioCounter& other) {
    hits_ += other.hits_;
    total_ += other.total_;
  }

  /// Ratio in [0,1]; 0 when empty.
  double ratio() const {
    return total_ ? static_cast<double>(hits_) / static_cast<double>(total_)
                  : 0.0;
  }
  double percent() const { return 100.0 * ratio(); }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t total_ = 0;
};

/// Fixed-width linear histogram over [lo, hi) with explicit under/overflow
/// buckets: out-of-range samples are counted separately instead of clamped
/// into the edge buckets, so totals always balance AND the interior
/// distribution stays honest about its tails.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {
    BAPS_REQUIRE(hi > lo, "histogram range must be nonempty");
    BAPS_REQUIRE(buckets > 0, "histogram needs at least one bucket");
  }

  void add(double x) {
    ++n_;
    if (x < lo_) {
      ++underflow_;
      return;
    }
    if (x >= hi_) {
      ++overflow_;
      return;
    }
    const double t = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
    // Floating-point rounding can push t*buckets to exactly buckets even
    // though x < hi; keep such samples in the last interior bucket.
    if (idx >= counts_.size()) idx = counts_.size() - 1;
    ++counts_[idx];
  }

  /// Total samples, under/overflow included.
  std::uint64_t count() const { return n_; }
  /// Interior buckets only (under/overflow excluded).
  const std::vector<std::uint64_t>& buckets() const { return counts_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  /// Linear-interpolated quantile, q in [0,1]. Well-defined at the edges:
  /// quantile mass in the underflow bucket resolves to lo and overflow mass
  /// to hi, so the result is always within [lo, hi].
  double quantile(double q) const;

  /// Adds another histogram's bucket counts into this one. Bucket counts are
  /// integers, so merging shards is exact regardless of the order samples
  /// were observed in. Both histograms must share the same domain and
  /// resolution.
  void merge_from(const Histogram& other) {
    BAPS_REQUIRE(lo_ == other.lo_ && hi_ == other.hi_ &&
                     counts_.size() == other.counts_.size(),
                 "histogram merge requires identical bucket layout");
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    n_ += other.n_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t n_ = 0;
};

}  // namespace baps
