#include "util/thread_pool.hpp"

#include <algorithm>

namespace baps {

ThreadPool::ThreadPool(std::size_t threads) {
  auto& reg = obs::Registry::global();
  tasks_total_ = &reg.counter("threadpool_tasks_total");
  queue_depth_ = &reg.gauge("threadpool_queue_depth");
  busy_seconds_ = &reg.gauge("threadpool_busy_seconds_total");
  // Log10-seconds domains spanning 100 ns .. 1000 s.
  wait_hist_ = &reg.histogram("threadpool_task_wait_seconds", -7.0, 3.0, 50,
                              obs::HistScale::kLog10);
  run_hist_ = &reg.histogram("threadpool_task_run_seconds", -7.0, 3.0, 50,
                             obs::HistScale::kLog10);

  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  reg.gauge("threadpool_workers").set(static_cast<double>(threads));
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      item = std::move(queue_.front());
      queue_.pop();
    }
    queue_depth_->sub(1.0);
    const double start = obs::monotonic_seconds();
    wait_hist_->observe(start - item.enqueued_at);
    item.fn();
    const double ran = obs::monotonic_seconds() - start;
    busy_seconds_->add(ran);
    run_hist_->observe(ran);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace baps
