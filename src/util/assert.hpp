// Lightweight always-on invariant checking.
//
// BAPS_REQUIRE is for precondition violations (caller bugs), BAPS_ENSURE for
// internal invariants. Both throw baps::InvariantError so tests can assert on
// failures; neither compiles out in release builds — the simulator is cheap
// enough that checking is always affordable.
#pragma once

#include <stdexcept>
#include <string>

namespace baps {

/// Thrown when a BAPS_REQUIRE/BAPS_ENSURE predicate fails.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void invariant_failure(const char* kind, const char* expr,
                                    const char* file, int line,
                                    const std::string& msg);
}  // namespace detail

}  // namespace baps

#define BAPS_REQUIRE(expr, msg)                                             \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::baps::detail::invariant_failure("precondition", #expr, __FILE__,    \
                                        __LINE__, (msg));                   \
    }                                                                       \
  } while (false)

#define BAPS_ENSURE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::baps::detail::invariant_failure("invariant", #expr, __FILE__,       \
                                        __LINE__, (msg));                   \
    }                                                                       \
  } while (false)
