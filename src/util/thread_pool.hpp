// Fixed-size thread pool used by the parallel sweep runner. Simulations are
// independent, embarrassingly parallel tasks over immutable shared trace
// data, so a plain mutex-protected queue is enough — no work stealing.
//
// Concurrency discipline (CppCoreGuidelines CP.*): tasks capture either
// values or shared_ptr<const T>; each worker mutates only its own state. The
// pool joins all workers in the destructor so no task outlives the pool.
//
// Observability: every pool publishes to the global obs registry —
//   threadpool_tasks_total            tasks submitted
//   threadpool_queue_depth            currently queued (gauge)
//   threadpool_busy_seconds_total     summed task execution time (gauge);
//                                     utilization = busy / (wall × workers)
//   threadpool_task_wait_seconds      queue-wait distribution (log10 s)
//   threadpool_task_run_seconds       execution-time distribution (log10 s)
// Handles are resolved once at construction; the per-task cost is a few
// relaxed atomics and two clock reads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/registry.hpp"
#include "obs/timer.hpp"

namespace baps {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Summed execution seconds across all completed tasks.
  double busy_seconds() const { return busy_seconds_->value(); }

  /// Enqueues a task and returns a future for its result. Exceptions thrown
  /// by the task propagate through the future.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::scoped_lock lock(mu_);
      queue_.push(Item{[task]() { (*task)(); }, obs::monotonic_seconds()});
    }
    tasks_total_->inc();
    queue_depth_->add(1.0);
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Item {
    std::function<void()> fn;
    double enqueued_at = 0.0;  ///< monotonic_seconds() at submit
  };

  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<Item> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  obs::Counter* tasks_total_;
  obs::Gauge* queue_depth_;
  obs::Gauge* busy_seconds_;
  obs::Histogram* wait_hist_;
  obs::Histogram* run_hist_;
};

}  // namespace baps
