// Fixed-size thread pool used by the parallel sweep runner. Simulations are
// independent, embarrassingly parallel tasks over immutable shared trace
// data, so a plain mutex-protected queue is enough — no work stealing.
//
// Concurrency discipline (CppCoreGuidelines CP.*): tasks capture either
// values or shared_ptr<const T>; each worker mutates only its own state. The
// pool joins all workers in the destructor so no task outlives the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace baps {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task and returns a future for its result. Exceptions thrown
  /// by the task propagate through the future.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::scoped_lock lock(mu_);
      queue_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace baps
