#include "util/hex.hpp"

#include "util/assert.hpp"

namespace baps {

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out += kDigits[b >> 4];
    out += kDigits[b & 0xF];
  }
  return out;
}

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  BAPS_REQUIRE(hex.size() % 2 == 0, "hex string must have even length");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    BAPS_REQUIRE(false, std::string("invalid hex character: ") + c);
    return 0;
  };
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((nibble(hex[i]) << 4) |
                                            nibble(hex[i + 1])));
  }
  return out;
}

}  // namespace baps
