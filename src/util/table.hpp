// ASCII table and CSV rendering for the benchmark harnesses. Every bench
// binary prints the same rows the paper's tables/figures report; --csv mode
// emits machine-readable output for replotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace baps {

/// Column-aligned text table with a header row. Cells are strings; numeric
/// helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add_* calls append cells to it.
  Table& row();
  Table& cell(std::string value);
  Table& cell(double value, int precision = 2);
  Table& cell(std::uint64_t value);
  Table& cell_percent(double ratio01, int precision = 2);

  /// Renders with padded columns and a separator under the header.
  std::string to_string() const;
  /// Renders RFC-4180-ish CSV (no quoting of embedded commas needed here,
  /// but commas in cells are escaped by quoting anyway).
  std::string to_csv() const;

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

/// Formats a byte count with binary units ("1.50 MiB").
std::string format_bytes(std::uint64_t bytes);

/// Formats seconds adaptively ("1.2 ms", "3.4 s").
std::string format_seconds(double seconds);

}  // namespace baps
