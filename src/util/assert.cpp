#include "util/assert.hpp"

#include <sstream>

namespace baps::detail {

void invariant_failure(const char* kind, const char* expr, const char* file,
                       int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace baps::detail
