#include "util/stats.hpp"

namespace baps {

double Histogram::quantile(double q) const {
  BAPS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (n_ == 0) return lo_;
  const double target = q * static_cast<double>(n_);
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  double running = static_cast<double>(underflow_);
  if (running >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (running + c >= target) {
      const double frac = c > 0 ? (target - running) / c : 0.0;
      return lo_ + (static_cast<double>(i) + frac) * width;
    }
    running += c;
  }
  return hi_;
}

}  // namespace baps
