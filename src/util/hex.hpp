// Hex encoding/decoding for digests and keys.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace baps {

/// Lowercase hex of a byte span.
std::string to_hex(std::span<const std::uint8_t> bytes);

/// Parses lowercase/uppercase hex; throws InvariantError on odd length or
/// non-hex characters.
std::vector<std::uint8_t> from_hex(const std::string& hex);

}  // namespace baps
