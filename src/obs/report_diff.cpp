#include "obs/report_diff.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace baps::obs {

namespace {

enum class DocKind { kReport, kHotpath, kUnknown };

DocKind doc_kind(const JsonValue& doc) {
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) return DocKind::kUnknown;
  if (schema->as_string() == "baps.report.v1") return DocKind::kReport;
  if (schema->as_string() == "baps.bench_hotpath.v1") return DocKind::kHotpath;
  return DocKind::kUnknown;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(4);
  os << v;
  return os.str();
}

/// Gauge instances of one metric family from a report's registry section,
/// keyed by their rendered label set.
std::map<std::string, double> report_gauges(const JsonValue& report,
                                            const std::string& metric) {
  std::map<std::string, double> out;
  const JsonValue* registry = report.find("registry");
  const JsonValue* gauges =
      registry != nullptr ? registry->find("gauges") : nullptr;
  if (gauges == nullptr || !gauges->is_array()) return out;
  for (const JsonValue& g : gauges->as_array()) {
    if (!g.is_object()) continue;
    const JsonValue* name = g.find("name");
    const JsonValue* value = g.find("value");
    if (name == nullptr || !name->is_string() ||
        name->as_string() != metric || value == nullptr ||
        !value->is_number() || !std::isfinite(value->as_double())) {
      continue;
    }
    std::string key;
    if (const JsonValue* labels = g.find("labels");
        labels != nullptr && labels->is_object()) {
      for (const auto& [k, v] : labels->as_object()) {
        if (!key.empty()) key += ',';
        key += k + "=" + (v.is_string() ? v.as_string() : v.dump());
      }
    }
    out["{" + key + "}"] = value->as_double();
  }
  return out;
}

/// Per-org req/s from a report: replay_requests_per_second gauges whose only
/// label is `org` (the sharded variants carry extra shards/mode labels and
/// describe a different machine shape).
std::map<std::string, double> report_org_rps(const JsonValue& report) {
  std::map<std::string, double> out;
  const JsonValue* registry = report.find("registry");
  const JsonValue* gauges =
      registry != nullptr ? registry->find("gauges") : nullptr;
  if (gauges == nullptr || !gauges->is_array()) return out;
  for (const JsonValue& g : gauges->as_array()) {
    if (!g.is_object()) continue;
    const JsonValue* name = g.find("name");
    const JsonValue* value = g.find("value");
    const JsonValue* labels = g.find("labels");
    if (name == nullptr || !name->is_string() ||
        name->as_string() != "replay_requests_per_second" ||
        value == nullptr || !value->is_number() || labels == nullptr ||
        !labels->is_object()) {
      continue;
    }
    const auto& obj = labels->as_object();
    if (obj.size() != 1 || obj[0].first != "org" ||
        !obj[0].second.is_string()) {
      continue;
    }
    const double v = value->as_double();
    if (std::isfinite(v) && v > 0.0) out[obj[0].second.as_string()] = v;
  }
  return out;
}

/// Per-org req/s from the newest hotpath entry: `requests_per_second`, or
/// `unsharded_requests_per_second` for entries that split out sharded runs.
std::map<std::string, double> hotpath_org_rps(const JsonValue& doc) {
  std::map<std::string, double> out;
  const JsonValue* entries = doc.find("entries");
  if (entries == nullptr || !entries->is_array() ||
      entries->as_array().empty()) {
    return out;
  }
  const JsonValue& last = entries->as_array().back();
  const JsonValue* rps = last.find("requests_per_second");
  if (rps == nullptr) rps = last.find("unsharded_requests_per_second");
  if (rps == nullptr || !rps->is_object()) return out;
  for (const auto& [org, v] : rps->as_object()) {
    if (v.is_number() && std::isfinite(v.as_double()) && v.as_double() > 0.0) {
      out[org] = v.as_double();
    }
  }
  return out;
}

/// Divides every value by the map's geometric mean (values are positive).
void geomean_normalize(std::map<std::string, double>& m) {
  if (m.empty()) return;
  double log_sum = 0.0;
  for (const auto& [k, v] : m) log_sum += std::log(v);
  const double geomean = std::exp(log_sum / static_cast<double>(m.size()));
  for (auto& [k, v] : m) v /= geomean;
}

double tolerance_for(const ReportDiffOptions& options,
                     const std::string& metric, double mode_default) {
  if (auto it = options.metric_tolerances.find(metric);
      it != options.metric_tolerances.end()) {
    return it->second;
  }
  return options.tolerance_pct >= 0.0 ? options.tolerance_pct : mode_default;
}

void compare_one(const std::string& what, double base, double cur, double tol,
                 ReportDiffResult* result) {
  ++result->compared;
  const double rel = (cur - base) / base * 100.0;
  if (cur < base * (1.0 - tol / 100.0)) {
    result->ok = false;
    result->findings.push_back(what + ": regressed " + fmt(-rel) + "% (" +
                               fmt(base) + " -> " + fmt(cur) +
                               ", tolerance " + fmt(tol) + "%)");
  } else if (rel > tol) {
    result->notes.push_back(what + ": improved " + fmt(rel) + "% (" +
                            fmt(base) + " -> " + fmt(cur) + ")");
  }
}

}  // namespace

ReportDiffResult diff_reports(const JsonValue& baseline,
                              const JsonValue& current,
                              const ReportDiffOptions& options) {
  ReportDiffResult result;
  const DocKind base_kind = doc_kind(baseline);
  const DocKind cur_kind = doc_kind(current);
  if (base_kind == DocKind::kUnknown || cur_kind == DocKind::kUnknown) {
    result.ok = false;
    result.findings.push_back(
        "unrecognized schema: inputs must be baps.report.v1 or "
        "baps.bench_hotpath.v1 documents");
    return result;
  }

  const double inject = options.inject_regression_pct;

  if (base_kind == DocKind::kReport && cur_kind == DocKind::kReport) {
    // Same-machine A/B: absolute values compare directly.
    for (const std::string& metric : options.metric_names) {
      const double tol = tolerance_for(options, metric, /*mode_default=*/20.0);
      auto base = report_gauges(baseline, metric);
      auto cur = report_gauges(current, metric);
      for (const auto& [key, base_v] : base) {
        if (base_v <= 0.0) continue;
        auto it = cur.find(key);
        if (it == cur.end()) {
          result.notes.push_back(metric + key +
                                 ": in baseline only, skipped");
          continue;
        }
        double cur_v = it->second;
        if (inject > 0.0) cur_v *= 1.0 - inject / 100.0;
        compare_one(metric + key, base_v, cur_v, tol, &result);
      }
      for (const auto& [key, cur_v] : cur) {
        if (base.find(key) == base.end()) {
          result.notes.push_back(metric + key + ": in current only, skipped");
        }
      }
    }
    return result;
  }

  // Hotpath mode: normalize shapes before comparing.
  auto base_rps = base_kind == DocKind::kHotpath ? hotpath_org_rps(baseline)
                                                 : report_org_rps(baseline);
  auto cur_rps = cur_kind == DocKind::kHotpath ? hotpath_org_rps(current)
                                               : report_org_rps(current);
  if (base_rps.empty() || cur_rps.empty()) {
    result.ok = false;
    result.findings.push_back(
        "no per-org requests_per_second values to compare (baseline " +
        std::to_string(base_rps.size()) + " orgs, current " +
        std::to_string(cur_rps.size()) + ")");
    return result;
  }
  // Restrict both sides to the shared organizations so the geomeans
  // describe the same population.
  for (auto it = base_rps.begin(); it != base_rps.end();) {
    if (cur_rps.find(it->first) == cur_rps.end()) {
      result.notes.push_back("org " + it->first +
                             ": in baseline only, skipped");
      it = base_rps.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = cur_rps.begin(); it != cur_rps.end();) {
    if (base_rps.find(it->first) == base_rps.end()) {
      result.notes.push_back("org " + it->first +
                             ": in current only, skipped");
      it = cur_rps.erase(it);
    } else {
      ++it;
    }
  }
  if (base_rps.empty()) {
    result.ok = false;
    result.findings.push_back("baseline and current share no organizations");
    return result;
  }
  geomean_normalize(base_rps);
  geomean_normalize(cur_rps);
  result.notes.push_back(
      "cross-machine mode: values geomean-normalized over " +
      std::to_string(base_rps.size()) +
      " shared organizations; comparing relative shape, not absolute req/s");
  const double tol = tolerance_for(options, "replay_requests_per_second",
                                   /*mode_default=*/50.0);
  for (const auto& [org, base_v] : base_rps) {
    double cur_v = cur_rps[org];
    // Injected AFTER normalization: a uniform pre-normalization slowdown
    // would cancel out of the shape comparison by construction.
    if (inject > 0.0) cur_v *= 1.0 - inject / 100.0;
    compare_one("replay_requests_per_second{org=" + org + "} (normalized)",
                base_v, cur_v, tol, &result);
  }
  return result;
}

}  // namespace baps::obs
