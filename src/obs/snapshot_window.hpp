// Rolling window of registry snapshots for live introspection. A daemon
// captures a snapshot every tick; the window keeps the most recent N, and
// window_json() reports both the current values and per-counter rates over
// the window span — so "requests per second right now" is queryable from a
// running process instead of only derivable from a shutdown report.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>

#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace baps::obs {

class SnapshotWindow {
 public:
  /// Keeps the latest `capacity` captures (>= 2 for rates to exist).
  explicit SnapshotWindow(std::size_t capacity = 64)
      : capacity_(capacity < 2 ? 2 : capacity) {}

  /// Records one timestamped snapshot; `now_seconds` is monotonic time.
  void capture(Snapshot snapshot, double now_seconds);

  std::size_t size() const;
  double span_seconds() const;

  /// {"window_seconds": ..., "captures": N, "rates": [{name, labels,
  ///  per_second}...]} — counter deltas oldest→newest divided by the window
  /// span. Empty rates until two captures exist.
  JsonValue window_json() const;

 private:
  struct Entry {
    double at_seconds = 0.0;
    Snapshot snapshot;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Entry> entries_;
};

}  // namespace baps::obs
