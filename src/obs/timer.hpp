// Wall-clock timing helpers: a RAII ScopedTimer that reports its elapsed
// seconds to a histogram / counter / callback, and PhaseTimers — a named
// accumulator of per-phase wall times that report writers serialize (the
// "load trace / sweep / write report" breakdown of a CLI or bench run).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace baps::obs {

/// Monotonic seconds-since-some-epoch.
inline double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times its own lifetime and reports once from the destructor. Any of the
/// targets may be null; seconds() reads the running elapsed time.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist = nullptr, Gauge* seconds_total = nullptr)
      : hist_(hist), gauge_(seconds_total), start_(monotonic_seconds()) {}
  explicit ScopedTimer(std::function<void(double)> on_done)
      : on_done_(std::move(on_done)), start_(monotonic_seconds()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double seconds() const { return monotonic_seconds() - start_; }

  ~ScopedTimer() {
    const double s = seconds();
    if (hist_) hist_->observe(s);
    if (gauge_) gauge_->add(s);
    if (on_done_) on_done_(s);
  }

 private:
  Histogram* hist_ = nullptr;
  Gauge* gauge_ = nullptr;
  std::function<void(double)> on_done_;
  double start_;
};

/// Thread-safe named phase accumulator, preserving first-use order.
class PhaseTimers {
 public:
  struct Phase {
    std::string name;
    double seconds = 0.0;
    std::uint64_t count = 0;
  };

  /// RAII scope: adds its elapsed time to `name` when destroyed.
  class Scope {
   public:
    Scope(PhaseTimers& owner, std::string name)
        : owner_(&owner), name_(std::move(name)),
          start_(monotonic_seconds()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { owner_->add(name_, monotonic_seconds() - start_); }

   private:
    PhaseTimers* owner_;
    std::string name_;
    double start_;
  };

  Scope scope(std::string name) { return Scope(*this, std::move(name)); }

  void add(const std::string& name, double seconds);

  std::vector<Phase> snapshot() const;

  /// `[{"name": ..., "seconds": ..., "count": ...}, ...]`
  JsonValue to_json() const;

 private:
  mutable std::mutex mu_;
  std::vector<Phase> phases_;
};

}  // namespace baps::obs
