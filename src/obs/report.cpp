#include "obs/report.hpp"

#include <array>
#include <cmath>
#include <fstream>
#include <map>
#include <optional>

#include "sim/config.hpp"
#include "wire/frame.hpp"

namespace baps::obs {

namespace {

JsonValue ratio_json(const RatioCounter& r) {
  return json_object({{"count", JsonValue(r.hits())},
                      {"total", JsonValue(r.total())},
                      {"ratio", JsonValue(r.ratio())}});
}

}  // namespace

JsonValue metrics_to_json(const sim::Metrics& m) {
  const JsonValue locations = json_object(
      {{"local_browser", json_object({{"hits", JsonValue(m.local_browser_hits)},
                                      {"bytes",
                                       JsonValue(m.local_browser_hit_bytes)}})},
       {"proxy", json_object({{"hits", JsonValue(m.proxy_hits)},
                              {"bytes", JsonValue(m.proxy_hit_bytes)}})},
       {"remote_browser",
        json_object({{"hits", JsonValue(m.remote_browser_hits)},
                     {"bytes", JsonValue(m.remote_browser_hit_bytes)}})},
       {"miss", json_object({{"count", JsonValue(m.misses)},
                             {"bytes", JsonValue(m.miss_bytes)}})}});

  const JsonValue overheads = json_object(
      {{"remote_transfer_time_s", JsonValue(m.remote_transfer_time_s)},
       {"remote_contention_time_s", JsonValue(m.remote_contention_time_s)},
       {"remote_transfer_bytes", JsonValue(m.remote_transfer_bytes)},
       {"index_messages", JsonValue(m.index_messages)},
       {"false_forwards", JsonValue(m.false_forwards)},
       {"stale_remote_probes", JsonValue(m.stale_remote_probes)},
       {"remote_overhead_fraction", JsonValue(m.remote_overhead_fraction())},
       {"contention_fraction_of_comm",
        JsonValue(m.contention_fraction_of_comm())}});

  const JsonValue latency = json_object(
      {{"count", JsonValue(m.log_latency.count())},
       {"p50_s", JsonValue(m.latency_quantile(0.5))},
       {"p90_s", JsonValue(m.latency_quantile(0.9))},
       {"p99_s", JsonValue(m.latency_quantile(0.99))}});

  const JsonValue churn =
      json_object({{"departures", JsonValue(m.churn_departures)},
                   {"rejoins", JsonValue(m.churn_rejoins)},
                   {"wiped_docs", JsonValue(m.churn_wiped_docs)}});

  return json_object(
      {{"hits", ratio_json(m.hits)},
       {"byte_hits", ratio_json(m.byte_hits)},
       {"locations", locations},
       {"memory",
        json_object({{"memory_hit_bytes", JsonValue(m.memory_hit_bytes)},
                     {"disk_hit_bytes", JsonValue(m.disk_hit_bytes)},
                     {"memory_byte_hit_ratio",
                      JsonValue(m.memory_byte_hit_ratio())}})},
       {"size_change_misses", JsonValue(m.size_change_misses)},
       {"overheads", overheads},
       {"service_time",
        json_object({{"total_s", JsonValue(m.total_service_time_s)},
                     {"hit_latency_s", JsonValue(m.total_hit_latency_s)}})},
       {"latency", latency},
       {"churn", churn}});
}

JsonValue sweep_to_json(const std::vector<core::CacheSizePoint>& points) {
  JsonArray out;
  for (const auto& p : points) {
    JsonArray orgs;
    for (const auto& [org, m] : p.by_org) {
      orgs.push_back(json_object({{"org", JsonValue(sim::org_name(org))},
                                  {"metrics", metrics_to_json(m)}}));
    }
    out.push_back(json_object(
        {{"relative_cache_size", JsonValue(p.relative_cache_size)},
         {"orgs", JsonValue(std::move(orgs))}}));
  }
  return JsonValue(std::move(out));
}

JsonValue client_scaling_to_json(
    const std::vector<core::ClientScalingPoint>& points) {
  JsonArray out;
  for (const auto& p : points) {
    out.push_back(json_object(
        {{"client_fraction", JsonValue(p.client_fraction)},
         {"num_clients", JsonValue(p.num_clients)},
         {"browsers_aware", metrics_to_json(p.browsers_aware)},
         {"proxy_and_local", metrics_to_json(p.proxy_and_local)},
         {"hit_ratio_increment_pct", JsonValue(p.hit_ratio_increment_pct)},
         {"byte_hit_ratio_increment_pct",
          JsonValue(p.byte_hit_ratio_increment_pct)}}));
  }
  return JsonValue(std::move(out));
}

ReportBuilder::ReportBuilder(std::string tool) {
  doc_.set("schema", JsonValue(kReportSchema));
  doc_.set("tool", JsonValue(std::move(tool)));
}

ReportBuilder& ReportBuilder::set_title(std::string title) {
  doc_.set("title", JsonValue(std::move(title)));
  return *this;
}

ReportBuilder& ReportBuilder::set_args(int argc, char** argv) {
  JsonArray args;
  for (int i = 1; i < argc; ++i) args.push_back(JsonValue(argv[i]));
  doc_.set("args", JsonValue(std::move(args)));
  return *this;
}

ReportBuilder& ReportBuilder::set_trace(const trace::Trace& t) {
  std::uint64_t total_bytes = 0;
  for (const auto& r : t.requests()) total_bytes += r.size;
  doc_.set("trace", json_object({{"name", JsonValue(t.name())},
                                 {"requests", JsonValue(t.size())},
                                 {"clients", JsonValue(t.num_clients())},
                                 {"docs", JsonValue(t.num_docs())},
                                 {"total_bytes", JsonValue(total_bytes)}}));
  return *this;
}

ReportBuilder& ReportBuilder::add_phases(const PhaseTimers& phases) {
  doc_.set("phases", phases.to_json());
  return *this;
}

ReportBuilder& ReportBuilder::add_sweep(
    const std::vector<core::CacheSizePoint>& points) {
  doc_.set("sweep", sweep_to_json(points));
  return *this;
}

ReportBuilder& ReportBuilder::add_client_scaling(
    const std::vector<core::ClientScalingPoint>& points,
    const std::string& trace_label) {
  JsonValue entries = client_scaling_to_json(points);
  if (!trace_label.empty()) {
    for (auto& entry : entries.as_array()) {
      entry.set("trace", JsonValue(trace_label));
    }
  }
  // Appends across calls so a multi-trace bench (Figure 8 runs three
  // presets) accumulates one flat array.
  JsonValue* existing = doc_.find("client_scaling");
  if (existing == nullptr) {
    doc_.set("client_scaling", std::move(entries));
  } else {
    for (auto& entry : entries.as_array()) {
      existing->as_array().push_back(std::move(entry));
    }
  }
  return *this;
}

ReportBuilder& ReportBuilder::set_registry(const Snapshot& snapshot) {
  doc_.set("registry", to_json(snapshot));
  return *this;
}

JsonValue ReportBuilder::build() const { return doc_; }

bool ReportBuilder::write(const std::string& path, std::string* error) const {
  std::ofstream out(path);
  if (!out) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  doc_.dump_to(out, /*indent=*/2);
  out << '\n';
  out.flush();
  if (!out) {
    if (error) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

// --------------------------------------------------------------------------
// Validation.

namespace {

bool fail(std::string* error, const std::string& what) {
  if (error && error->empty()) *error = what;
  return false;
}

bool check_ratio(const JsonValue& v, const std::string& where,
                 std::string* error) {
  if (!v.is_object()) return fail(error, where + ": not an object");
  const JsonValue* count = v.find("count");
  const JsonValue* total = v.find("total");
  const JsonValue* ratio = v.find("ratio");
  if (!count || !total || !ratio || !count->is_number() ||
      !total->is_number() || !ratio->is_number()) {
    return fail(error, where + ": needs numeric count/total/ratio");
  }
  if (count->as_uint() > total->as_uint()) {
    return fail(error, where + ": count exceeds total");
  }
  const double recomputed =
      total->as_uint()
          ? static_cast<double>(count->as_uint()) /
                static_cast<double>(total->as_uint())
          : 0.0;
  if (std::fabs(recomputed - ratio->as_double()) > 1e-9) {
    return fail(error, where + ": ratio does not match count/total");
  }
  return true;
}

bool check_metrics(const JsonValue& m, const std::string& where,
                   std::string* error) {
  if (!m.is_object()) return fail(error, where + ": metrics not an object");
  if (!check_ratio(m.at("hits"), where + ".hits", error)) return false;
  if (!check_ratio(m.at("byte_hits"), where + ".byte_hits", error)) {
    return false;
  }
  const JsonValue* loc = m.find("locations");
  if (!loc || !loc->is_object()) {
    return fail(error, where + ": missing locations");
  }
  // The four locations partition the requests.
  const std::uint64_t sum = loc->at("local_browser").at("hits").as_uint() +
                            loc->at("proxy").at("hits").as_uint() +
                            loc->at("remote_browser").at("hits").as_uint() +
                            loc->at("miss").at("count").as_uint();
  if (sum != m.at("hits").at("total").as_uint()) {
    return fail(error, where + ": location counts do not sum to total");
  }
  return true;
}

}  // namespace

bool validate_report(const JsonValue& report, std::string* error) {
  if (error) error->clear();
  if (!report.is_object()) return fail(error, "report: not a JSON object");
  const JsonValue* schema = report.find("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != kReportSchema) {
    return fail(error, std::string("report: schema must be ") + kReportSchema);
  }
  const JsonValue* tool = report.find("tool");
  if (!tool || !tool->is_string() || tool->as_string().empty()) {
    return fail(error, "report: missing tool");
  }
  if (const JsonValue* phases = report.find("phases")) {
    if (!phases->is_array()) return fail(error, "phases: not an array");
    for (const auto& p : phases->as_array()) {
      if (!p.is_object() || !p.find("name") || !p.find("seconds") ||
          !p.find("count")) {
        return fail(error, "phases: entry needs name/seconds/count");
      }
      if (p.at("seconds").as_double() < 0.0) {
        return fail(error, "phases: negative wall time");
      }
    }
  }
  if (const JsonValue* sweep = report.find("sweep")) {
    if (!sweep->is_array()) return fail(error, "sweep: not an array");
    for (const auto& point : sweep->as_array()) {
      if (!point.is_object() || !point.find("relative_cache_size") ||
          !point.find("orgs") || !point.at("orgs").is_array()) {
        return fail(error, "sweep: point needs relative_cache_size + orgs");
      }
      for (const auto& entry : point.at("orgs").as_array()) {
        const JsonValue* org = entry.find("org");
        const JsonValue* metrics = entry.find("metrics");
        if (!org || !org->is_string() || !metrics) {
          return fail(error, "sweep: org entry needs org + metrics");
        }
        if (!check_metrics(*metrics, "sweep[" + org->as_string() + "]",
                           error)) {
          return false;
        }
      }
    }
  }
  if (const JsonValue* scaling = report.find("client_scaling")) {
    if (!scaling->is_array()) {
      return fail(error, "client_scaling: not an array");
    }
    for (const auto& point : scaling->as_array()) {
      if (!point.is_object() || !point.find("client_fraction")) {
        return fail(error, "client_scaling: point needs client_fraction");
      }
      for (const char* side : {"browsers_aware", "proxy_and_local"}) {
        if (const JsonValue* metrics = point.find(side)) {
          if (!check_metrics(*metrics, std::string("client_scaling.") + side,
                             error)) {
            return false;
          }
        }
      }
    }
  }
  if (!validate_transport_metrics(report, error)) return false;
  if (!validate_replay_metrics(report, error)) return false;
  if (!validate_fault_metrics(report, error)) return false;
  if (!validate_trace_metrics(report, error)) return false;
  if (!validate_latency_metrics(report, error)) return false;
  if (!validate_store_metrics(report, error)) return false;
  if (!validate_shard_metrics(report, error)) return false;
  if (!validate_netio_metrics(report, error)) return false;
  if (const JsonValue* registry = report.find("registry")) {
    if (!registry->is_object() || !registry->find("counters") ||
        !registry->find("gauges") || !registry->find("histograms")) {
      return fail(error,
                  "registry: needs counters/gauges/histograms arrays");
    }
    for (const char* section : {"counters", "gauges", "histograms"}) {
      const JsonValue& arr = registry->at(section);
      if (!arr.is_array()) {
        return fail(error, std::string("registry.") + section +
                               ": not an array");
      }
      for (const auto& inst : arr.as_array()) {
        if (!inst.is_object() || !inst.find("name")) {
          return fail(error, std::string("registry.") + section +
                                 ": instrument needs a name");
        }
      }
    }
  }
  return true;
}

namespace {

bool is_transport_counter(const std::string& name) {
  // store_* rides along: the durable tier's counters are cumulative across
  // restarts by design, so successive snapshots must be monotone too.
  return name.rfind("wire_", 0) == 0 || name.rfind("netio_", 0) == 0 ||
         name.rfind("store_", 0) == 0;
}

/// Stable identity of one counter instance: name plus labels in their
/// serialized order (snapshots emit labels sorted, so this matches across
/// reports from the same process).
std::string instance_key(const std::string& name, const JsonValue* labels) {
  std::string key = name;
  if (labels != nullptr && labels->is_object()) {
    for (const auto& [k, v] : labels->as_object()) {
      key += '|';
      key += k;
      key += '=';
      key += v.is_string() ? v.as_string() : v.dump();
    }
  }
  return key;
}

/// Collects the wire_*/netio_* counters of a report into key → value.
/// Returns false on structurally broken entries (missing name/value).
bool collect_transport_counters(const JsonValue& report,
                                std::map<std::string, double>* out,
                                std::string* error) {
  const JsonValue* registry = report.find("registry");
  if (registry == nullptr || !registry->is_object()) return true;
  const JsonValue* counters = registry->find("counters");
  if (counters == nullptr || !counters->is_array()) return true;
  for (const auto& inst : counters->as_array()) {
    if (!inst.is_object()) continue;
    const JsonValue* name = inst.find("name");
    if (name == nullptr || !name->is_string() ||
        !is_transport_counter(name->as_string())) {
      continue;
    }
    const JsonValue* value = inst.find("value");
    if (value == nullptr || !value->is_number()) {
      return fail(error, name->as_string() + ": counter needs a numeric value");
    }
    if (value->as_double() < 0.0) {
      return fail(error, name->as_string() + ": counter is negative");
    }
    (*out)[instance_key(name->as_string(), inst.find("labels"))] =
        value->as_double();
  }
  return true;
}

}  // namespace

bool validate_transport_metrics(const JsonValue& report, std::string* error) {
  if (error) error->clear();
  std::map<std::string, double> counters;
  if (!collect_transport_counters(report, &counters, error)) return false;

  const JsonValue* registry = report.find("registry");
  if (registry == nullptr || !registry->is_object()) return true;
  const JsonValue* arr = registry->find("counters");
  if (arr == nullptr || !arr->is_array()) return true;

  std::map<std::string, double> frames_by_dir, bytes_by_dir;
  for (const auto& inst : arr->as_array()) {
    if (!inst.is_object()) continue;
    const JsonValue* name = inst.find("name");
    if (name == nullptr || !name->is_string()) continue;
    const std::string& n = name->as_string();
    if (n != "wire_frames_total" && n != "wire_bytes_total") continue;
    const JsonValue* labels = inst.find("labels");
    const JsonValue* dir =
        labels != nullptr ? labels->find("dir") : nullptr;
    if (dir == nullptr || !dir->is_string() ||
        (dir->as_string() != "tx" && dir->as_string() != "rx")) {
      return fail(error, n + ": dir label must be tx or rx");
    }
    const JsonValue* value = inst.find("value");
    if (value == nullptr || !value->is_number()) {
      return fail(error, n + ": counter needs a numeric value");
    }
    auto& sums = n == "wire_frames_total" ? frames_by_dir : bytes_by_dir;
    sums[dir->as_string()] += value->as_double();
  }
  for (const auto& [dir, frames] : frames_by_dir) {
    if (frames == 0.0) continue;
    const auto it = bytes_by_dir.find(dir);
    const double bytes = it == bytes_by_dir.end() ? 0.0 : it->second;
    if (bytes < frames * static_cast<double>(wire::kHeaderSize)) {
      return fail(error, "wire_bytes_total{dir=" + dir +
                             "}: fewer bytes than headers for " +
                             "wire_frames_total frames");
    }
  }
  return true;
}

bool validate_replay_metrics(const JsonValue& report, std::string* error) {
  if (error) error->clear();
  const JsonValue* registry = report.find("registry");
  if (registry == nullptr || !registry->is_object()) return true;
  const JsonValue* arr = registry->find("gauges");
  if (arr == nullptr || !arr->is_array()) return true;

  for (const auto& inst : arr->as_array()) {
    if (!inst.is_object()) continue;
    const JsonValue* name = inst.find("name");
    if (name == nullptr || !name->is_string() ||
        name->as_string() != "replay_requests_per_second") {
      continue;
    }
    const JsonValue* labels = inst.find("labels");
    const JsonValue* org = labels != nullptr ? labels->find("org") : nullptr;
    if (org == nullptr || !org->is_string() || org->as_string().empty()) {
      return fail(error,
                  "replay_requests_per_second: needs a non-empty org label");
    }
    const JsonValue* value = inst.find("value");
    if (value == nullptr || !value->is_number() ||
        !std::isfinite(value->as_double()) || value->as_double() <= 0.0) {
      return fail(error, "replay_requests_per_second{org=" + org->as_string() +
                             "}: value must be finite and positive");
    }
  }
  return true;
}

bool validate_fault_metrics(const JsonValue& report, std::string* error) {
  if (error) error->clear();
  const JsonValue* registry = report.find("registry");
  if (registry == nullptr || !registry->is_object()) return true;
  const JsonValue* arr = registry->find("counters");
  if (arr == nullptr || !arr->is_array()) return true;

  // Per fault kind: injected and recovered totals, summed across instances.
  std::map<std::string, double> injected, recovered;
  for (const auto& inst : arr->as_array()) {
    if (!inst.is_object()) continue;
    const JsonValue* name = inst.find("name");
    if (name == nullptr || !name->is_string()) continue;
    const std::string& n = name->as_string();
    const bool is_injected = n == "fault_injected_total";
    const bool is_recovered = n == "fault_recovered_total";
    if (!is_injected && !is_recovered && n != "stale_index_hits_total") {
      continue;
    }
    const JsonValue* value = inst.find("value");
    if (value == nullptr || !value->is_number()) {
      return fail(error, n + ": counter needs a numeric value");
    }
    if (value->as_double() < 0.0) {
      return fail(error, n + ": counter is negative");
    }
    if (!is_injected && !is_recovered) continue;  // stale_index_hits_total
    const JsonValue* labels = inst.find("labels");
    const JsonValue* kind =
        labels != nullptr ? labels->find("kind") : nullptr;
    if (kind == nullptr || !kind->is_string() || kind->as_string().empty()) {
      return fail(error, n + ": needs a non-empty kind label");
    }
    auto& sums = is_injected ? injected : recovered;
    sums[kind->as_string()] += value->as_double();
  }
  // A fault can only be recovered after it was injected, so per kind
  // recovered <= injected (injecting is counted even when recovery fails).
  for (const auto& [kind, rec] : recovered) {
    const auto it = injected.find(kind);
    const double inj = it == injected.end() ? 0.0 : it->second;
    if (rec > inj) {
      return fail(error, "fault_recovered_total{kind=" + kind +
                             "}: exceeds fault_injected_total");
    }
  }
  return true;
}

bool validate_trace_metrics(const JsonValue& report, std::string* error) {
  if (error) error->clear();
  const JsonValue* registry = report.find("registry");
  if (registry == nullptr || !registry->is_object()) return true;

  if (const JsonValue* counters = registry->find("counters");
      counters != nullptr && counters->is_array()) {
    for (const auto& inst : counters->as_array()) {
      if (!inst.is_object()) continue;
      const JsonValue* name = inst.find("name");
      if (name == nullptr || !name->is_string() ||
          name->as_string() != "trace_spans_total") {
        continue;
      }
      const JsonValue* labels = inst.find("labels");
      const JsonValue* kind =
          labels != nullptr ? labels->find("kind") : nullptr;
      if (kind == nullptr || !kind->is_string() || kind->as_string().empty()) {
        return fail(error, "trace_spans_total: needs a non-empty kind label");
      }
      const JsonValue* value = inst.find("value");
      if (value == nullptr || !value->is_number() ||
          value->as_double() < 0.0) {
        return fail(error, "trace_spans_total{kind=" + kind->as_string() +
                               "}: value must be a non-negative number");
      }
    }
  }
  if (const JsonValue* hists = registry->find("histograms");
      hists != nullptr && hists->is_array()) {
    for (const auto& inst : hists->as_array()) {
      if (!inst.is_object()) continue;
      const JsonValue* name = inst.find("name");
      if (name == nullptr || !name->is_string() ||
          name->as_string() != "trace_stage_seconds") {
        continue;
      }
      const JsonValue* labels = inst.find("labels");
      const JsonValue* stage =
          labels != nullptr ? labels->find("stage") : nullptr;
      if (stage == nullptr || !stage->is_string() ||
          stage->as_string().empty()) {
        return fail(error,
                    "trace_stage_seconds: needs a non-empty stage label");
      }
      const JsonValue* count = inst.find("count");
      if (count == nullptr || !count->is_number() ||
          count->as_double() < 0.0) {
        return fail(error, "trace_stage_seconds{stage=" + stage->as_string() +
                               "}: count must be a non-negative number");
      }
    }
  }
  return true;
}

bool validate_latency_metrics(const JsonValue& report, std::string* error) {
  if (error) error->clear();
  const JsonValue* registry = report.find("registry");
  if (registry == nullptr || !registry->is_object()) return true;
  const JsonValue* arr = registry->find("gauges");
  if (arr == nullptr || !arr->is_array()) return true;

  // q label order for the monotonicity check.
  const auto q_rank = [](const std::string& q) -> int {
    if (q == "p50") return 0;
    if (q == "p95") return 1;
    if (q == "p99") return 2;
    if (q == "p999") return 3;
    return -1;
  };
  // scope key ("stage=..."/"org=...") -> quantiles seen, indexed by rank.
  std::map<std::string, std::array<std::optional<double>, 4>> scopes;

  for (const auto& inst : arr->as_array()) {
    if (!inst.is_object()) continue;
    const JsonValue* name = inst.find("name");
    if (name == nullptr || !name->is_string()) continue;
    const std::string& n = name->as_string();
    const bool is_stage = n == "latency_quantile_seconds";
    const bool is_replay = n == "replay_latency_quantile_seconds";
    if (!is_stage && !is_replay) continue;
    const JsonValue* labels = inst.find("labels");
    const JsonValue* q = labels != nullptr ? labels->find("q") : nullptr;
    if (q == nullptr || !q->is_string() || q_rank(q->as_string()) < 0) {
      return fail(error, n + ": q label must be one of p50/p95/p99/p999");
    }
    const char* scope_label = is_stage ? "stage" : "org";
    const JsonValue* scope =
        labels != nullptr ? labels->find(scope_label) : nullptr;
    if (scope == nullptr || !scope->is_string() ||
        scope->as_string().empty()) {
      return fail(error, n + ": needs a non-empty " +
                             std::string(scope_label) + " label");
    }
    const JsonValue* value = inst.find("value");
    if (value == nullptr || !value->is_number() ||
        !std::isfinite(value->as_double()) || value->as_double() < 0.0) {
      return fail(error, n + "{" + scope_label + "=" + scope->as_string() +
                             ",q=" + q->as_string() +
                             "}: value must be finite and non-negative");
    }
    scopes[n + "{" + scope_label + "=" + scope->as_string() + "}"]
          [static_cast<std::size_t>(q_rank(q->as_string()))] =
        value->as_double();
  }
  // Quantiles of one distribution cannot decrease as q grows.
  for (const auto& [scope, qs] : scopes) {
    double prev = -1.0;
    for (const auto& v : qs) {
      if (!v.has_value()) continue;
      if (*v < prev) {
        return fail(error, scope + ": quantiles not monotone in q");
      }
      prev = *v;
    }
  }
  return true;
}

bool validate_store_metrics(const JsonValue& report, std::string* error) {
  if (error) error->clear();
  const JsonValue* registry = report.find("registry");
  if (registry == nullptr || !registry->is_object()) return true;

  double probes = 0.0, hits = 0.0, misses = 0.0;
  bool have_probe_family = false;
  if (const JsonValue* counters = registry->find("counters");
      counters != nullptr && counters->is_array()) {
    for (const auto& inst : counters->as_array()) {
      if (!inst.is_object()) continue;
      const JsonValue* name = inst.find("name");
      if (name == nullptr || !name->is_string()) continue;
      const std::string& n = name->as_string();
      if (n.rfind("store_", 0) != 0) continue;
      const JsonValue* value = inst.find("value");
      if (value == nullptr || !value->is_number()) {
        return fail(error, n + ": counter needs a numeric value");
      }
      if (value->as_double() < 0.0) {
        return fail(error, n + ": counter is negative");
      }
      if (n == "store_bytes_total") {
        const JsonValue* labels = inst.find("labels");
        const JsonValue* dir =
            labels != nullptr ? labels->find("dir") : nullptr;
        if (dir == nullptr || !dir->is_string() ||
            (dir->as_string() != "read" && dir->as_string() != "written")) {
          return fail(error,
                      "store_bytes_total: dir label must be read or written");
        }
      }
      if (n == "store_probes_total") {
        probes += value->as_double();
        have_probe_family = true;
      } else if (n == "store_hits_total") {
        hits += value->as_double();
        have_probe_family = true;
      } else if (n == "store_misses_total") {
        misses += value->as_double();
        have_probe_family = true;
      }
    }
  }
  // Every disk probe resolves to exactly one of hit or miss (a quarantined
  // corrupt record counts as a miss — nothing was served).
  if (have_probe_family && hits + misses != probes) {
    return fail(error,
                "store_hits_total + store_misses_total != store_probes_total");
  }

  if (const JsonValue* hists = registry->find("histograms");
      hists != nullptr && hists->is_array()) {
    for (const auto& inst : hists->as_array()) {
      if (!inst.is_object()) continue;
      const JsonValue* name = inst.find("name");
      if (name == nullptr || !name->is_string() ||
          name->as_string() != "store_stage_seconds") {
        continue;
      }
      const JsonValue* labels = inst.find("labels");
      const JsonValue* op = labels != nullptr ? labels->find("op") : nullptr;
      if (op == nullptr || !op->is_string() || op->as_string().empty()) {
        return fail(error, "store_stage_seconds: needs a non-empty op label");
      }
      const JsonValue* count = inst.find("count");
      if (count == nullptr || !count->is_number() ||
          count->as_double() < 0.0) {
        return fail(error, "store_stage_seconds{op=" + op->as_string() +
                               "}: count must be a non-negative number");
      }
    }
  }
  return true;
}

bool validate_shard_metrics(const JsonValue& report, std::string* error) {
  if (error) error->clear();
  const JsonValue* registry = report.find("registry");
  if (registry == nullptr || !registry->is_object()) return true;
  const JsonValue* counters = registry->find("counters");
  if (counters == nullptr || !counters->is_array()) return true;

  // Per organization: sum of shard_requests_total{org,shard=*} on one side,
  // shard_merged_requests_total{org} on the other. Counts are cumulative
  // across sharded runs, but every run adds the same total to both sides,
  // so the invariant must hold on any snapshot.
  std::map<std::string, double> shard_sums, merged_totals;
  for (const auto& inst : counters->as_array()) {
    if (!inst.is_object()) continue;
    const JsonValue* name = inst.find("name");
    if (name == nullptr || !name->is_string()) continue;
    const std::string& n = name->as_string();
    const bool is_shard = n == "shard_requests_total";
    const bool is_merged = n == "shard_merged_requests_total";
    if (!is_shard && !is_merged) continue;
    const JsonValue* value = inst.find("value");
    if (value == nullptr || !value->is_number() ||
        value->as_double() < 0.0) {
      return fail(error, n + ": counter needs a non-negative numeric value");
    }
    const JsonValue* labels = inst.find("labels");
    const JsonValue* org = labels != nullptr ? labels->find("org") : nullptr;
    if (org == nullptr || !org->is_string() || org->as_string().empty()) {
      // The eagerly registered family members carry no labels and stay at
      // zero; any instance holding real counts must name its organization.
      if (value->as_double() != 0.0) {
        return fail(error, n + ": non-zero instance needs an org label");
      }
      continue;
    }
    if (is_shard) {
      const JsonValue* shard = labels->find("shard");
      if (shard == nullptr || !shard->is_string() ||
          shard->as_string().empty()) {
        return fail(error, "shard_requests_total{org=" + org->as_string() +
                               "}: needs a non-empty shard label");
      }
      shard_sums[org->as_string()] += value->as_double();
    } else {
      merged_totals[org->as_string()] += value->as_double();
    }
  }
  for (const auto& [org, sum] : shard_sums) {
    const auto it = merged_totals.find(org);
    if (it == merged_totals.end()) {
      return fail(error, "shard_requests_total{org=" + org +
                             "}: missing shard_merged_requests_total");
    }
    if (sum != it->second) {
      return fail(error, "shard_requests_total{org=" + org +
                             "}: shard counters sum to " +
                             std::to_string(sum) +
                             " but shard_merged_requests_total is " +
                             std::to_string(it->second));
    }
  }
  for (const auto& [org, total] : merged_totals) {
    if (total != 0.0 && shard_sums.find(org) == shard_sums.end()) {
      return fail(error, "shard_merged_requests_total{org=" + org +
                             "}: no per-shard counters to account for it");
    }
  }
  return true;
}

bool validate_netio_metrics(const JsonValue& report, std::string* error) {
  if (error) error->clear();
  const JsonValue* registry = report.find("registry");
  if (registry == nullptr || !registry->is_object()) return true;

  // Counters: every netio_* instance must be a non-negative number.
  if (const JsonValue* counters = registry->find("counters");
      counters != nullptr && counters->is_array()) {
    for (const auto& inst : counters->as_array()) {
      if (!inst.is_object()) continue;
      const JsonValue* name = inst.find("name");
      if (name == nullptr || !name->is_string()) continue;
      const std::string& n = name->as_string();
      if (n.rfind("netio_", 0) != 0 && n.rfind("connload_", 0) != 0) {
        continue;
      }
      const JsonValue* value = inst.find("value");
      if (value == nullptr || !value->is_number() ||
          value->as_double() < 0.0) {
        return fail(error, n + ": counter needs a non-negative numeric value");
      }
    }
  }

  const JsonValue* gauges = registry->find("gauges");
  if (gauges == nullptr || !gauges->is_array()) return true;
  std::map<std::string, double> quantiles;
  double peak = -1.0;
  double established = -1.0;
  for (const auto& inst : gauges->as_array()) {
    if (!inst.is_object()) continue;
    const JsonValue* name = inst.find("name");
    if (name == nullptr || !name->is_string()) continue;
    const std::string& n = name->as_string();
    if (n.rfind("netio_", 0) != 0 && n.rfind("connload_", 0) != 0) continue;
    const JsonValue* value = inst.find("value");
    if (value == nullptr || !value->is_number() || value->as_double() < 0.0) {
      return fail(error, n + ": gauge needs a non-negative numeric value");
    }
    if (n == "connload_roundtrip_quantile_seconds") {
      const JsonValue* labels = inst.find("labels");
      const JsonValue* q = labels != nullptr ? labels->find("q") : nullptr;
      if (q == nullptr || !q->is_string() ||
          (q->as_string() != "p50" && q->as_string() != "p99" &&
           q->as_string() != "p999")) {
        return fail(error, "connload_roundtrip_quantile_seconds: needs a q "
                           "label of p50, p99, or p999");
      }
      quantiles[q->as_string()] = value->as_double();
    } else if (n == "connload_connections_peak") {
      peak = value->as_double();
    }
  }
  if (const JsonValue* counters = registry->find("counters");
      counters != nullptr && counters->is_array()) {
    for (const auto& inst : counters->as_array()) {
      if (!inst.is_object()) continue;
      const JsonValue* name = inst.find("name");
      const JsonValue* value = inst.find("value");
      if (name != nullptr && name->is_string() && value != nullptr &&
          value->is_number() &&
          name->as_string() == "connload_established_total") {
        established = value->as_double();
      }
    }
  }
  if (!quantiles.empty()) {
    // The bench always emits all three together; a lone quantile means the
    // report was stitched by hand or the bench died mid-emit.
    for (const char* q : {"p50", "p99", "p999"}) {
      if (quantiles.count(q) == 0) {
        return fail(error, std::string("connload_roundtrip_quantile_seconds"
                                       ": missing q=") + q);
      }
    }
    if (quantiles["p50"] > quantiles["p99"] ||
        quantiles["p99"] > quantiles["p999"]) {
      return fail(error, "connload_roundtrip_quantile_seconds: quantiles "
                         "must be monotone (p50 <= p99 <= p999)");
    }
  }
  // Peak concurrency can never exceed the number of connections that ever
  // completed a connect.
  if (peak >= 0.0 && established >= 0.0 && peak > established) {
    return fail(error, "connload_connections_peak exceeds "
                       "connload_established_total");
  }
  return true;
}

bool validate_transport_monotonicity(const JsonValue& earlier,
                                     const JsonValue& later,
                                     std::string* error) {
  if (error) error->clear();
  std::map<std::string, double> before, after;
  if (!collect_transport_counters(earlier, &before, error)) return false;
  if (!collect_transport_counters(later, &after, error)) return false;
  for (const auto& [key, value] : before) {
    const auto it = after.find(key);
    if (it == after.end()) continue;
    if (it->second < value) {
      return fail(error, key + ": counter went backwards (" +
                             std::to_string(value) + " -> " +
                             std::to_string(it->second) + ")");
    }
  }
  return true;
}

}  // namespace baps::obs
