#include "obs/timer.hpp"

namespace baps::obs {

void PhaseTimers::add(const std::string& name, double seconds) {
  std::scoped_lock lock(mu_);
  for (auto& p : phases_) {
    if (p.name == name) {
      p.seconds += seconds;
      ++p.count;
      return;
    }
  }
  phases_.push_back({name, seconds, 1});
}

std::vector<PhaseTimers::Phase> PhaseTimers::snapshot() const {
  std::scoped_lock lock(mu_);
  return phases_;
}

JsonValue PhaseTimers::to_json() const {
  JsonArray out;
  for (const auto& p : snapshot()) {
    out.push_back(json_object({{"name", JsonValue(p.name)},
                               {"seconds", JsonValue(p.seconds)},
                               {"count", JsonValue(p.count)}}));
  }
  return JsonValue(std::move(out));
}

}  // namespace baps::obs
