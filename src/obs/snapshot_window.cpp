#include "obs/snapshot_window.hpp"

#include <utility>

namespace baps::obs {

void SnapshotWindow::capture(Snapshot snapshot, double now_seconds) {
  std::scoped_lock lock(mu_);
  entries_.push_back({now_seconds, std::move(snapshot)});
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::size_t SnapshotWindow::size() const {
  std::scoped_lock lock(mu_);
  return entries_.size();
}

double SnapshotWindow::span_seconds() const {
  std::scoped_lock lock(mu_);
  if (entries_.size() < 2) return 0.0;
  return entries_.back().at_seconds - entries_.front().at_seconds;
}

JsonValue SnapshotWindow::window_json() const {
  std::scoped_lock lock(mu_);
  JsonValue out = json_object({});
  const double span = entries_.size() < 2
                          ? 0.0
                          : entries_.back().at_seconds -
                                entries_.front().at_seconds;
  out.set("window_seconds", JsonValue(span));
  out.set("captures", JsonValue(static_cast<std::uint64_t>(entries_.size())));
  JsonArray rates;
  if (entries_.size() >= 2 && span > 0.0) {
    const Snapshot& oldest = entries_.front().snapshot;
    const Snapshot& newest = entries_.back().snapshot;
    for (const CounterSample& now : newest.counters) {
      std::uint64_t before = 0;
      if (const CounterSample* c = oldest.counter(now.name, now.labels)) {
        before = c->value;
      }
      // A counter reset mid-window would make this negative; clamp — the
      // next capture re-baselines.
      const std::uint64_t delta = now.value >= before ? now.value - before : 0;
      JsonObject labels;
      for (const auto& [k, v] : now.labels) labels.emplace_back(k, JsonValue(v));
      rates.push_back(json_object({
          {"name", JsonValue(now.name)},
          {"labels", JsonValue(std::move(labels))},
          {"per_second", JsonValue(static_cast<double>(delta) / span)},
      }));
    }
  }
  out.set("rates", JsonValue(std::move(rates)));
  return out;
}

}  // namespace baps::obs
