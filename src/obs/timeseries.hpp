// Continuous telemetry: a TimeSeriesSampler that captures Registry snapshots
// on a dedicated thread at a configurable interval, turns each consecutive
// snapshot pair into an interval record — counter deltas and per-second
// rates, histogram delta distributions with windowed p50/p95/p99, gauge
// levels — attaches process self-profiling (RSS, process + named-thread CPU
// time, allocation counters behind a hook), and exports the records as a
// `baps.timeseries.v1` JSONL stream while keeping the most recent intervals
// in a bounded ring buffer for live queries (the TimeSeriesRequest wire
// frame and `baps_top` read the ring via window_json()).
//
// The record math lives in a pure function (timeseries_record) so tests can
// drive reset/wraparound edge cases without threads, and the validator
// (validate_timeseries_lines) enforces the cross-record invariants —
// monotone seq/time, delta consistency with the previous record, rate ≈
// delta/interval, quantile ordering — that report_check --timeseries and
// the check.sh smoke rely on.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace baps::obs {

/// Schema tag on every JSONL interval record.
inline constexpr const char* kTimeSeriesSchema = "baps.timeseries.v1";
/// Schema tag on the live-window envelope served over the wire.
inline constexpr const char* kTimeSeriesWindowSchema =
    "baps.timeseries_window.v1";

/// Builds one interval record from two registry snapshots.
///
/// Delta rules (also enforced by the validator):
///  - counters: delta = cur - prev, except a reset (cur < prev) re-baselines
///    to delta = cur; per_second = delta / interval (0 when interval == 0).
///  - histograms: the delta distribution is the bucket-wise clamped
///    difference; a reset (cur.count < prev.count) treats prev as empty.
///    p50/p95/p99 are quantiles of the delta distribution — latency "over
///    the last interval", not since process start.
///  - gauges: levels, reported as-is.
/// Instruments absent from `prev` (registered mid-interval) delta against
/// zero. The first record of a stream uses an empty prev and interval 0.
JsonValue timeseries_record(const Snapshot& prev, const Snapshot& cur,
                            double interval_seconds, double at_seconds,
                            std::uint64_t seq);

class TimeSeriesSampler {
 public:
  struct Params {
    double interval_seconds = 1.0;
    std::size_t ring_capacity = 120;  ///< intervals kept for live queries
    bool process_stats = true;        ///< attach the "process" block
  };

  explicit TimeSeriesSampler(Params params,
                             Registry* registry = &Registry::global());
  ~TimeSeriesSampler();
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// JSONL destination (one record per line, flushed per line). Not owned;
  /// must outlive the sampler or be cleared with nullptr. Set before start().
  void set_sink(std::ostream* sink);

  /// Starts the sampling thread; captures the seq-0 baseline immediately.
  void start();

  /// Stops the thread after capturing one final interval, so short runs
  /// always export their end state. Idempotent.
  void stop();

  /// Captures one interval now (thread-safe; also usable without start()
  /// for manually-paced sampling).
  void sample_now();

  std::uint64_t intervals_captured() const;

  /// Live-window envelope: {"schema": "baps.timeseries_window.v1",
  ///  "interval_seconds": ..., "intervals": [most recent records, oldest
  ///  first]}. max_intervals == 0 means everything in the ring.
  JsonValue window_json(std::size_t max_intervals = 0) const;

 private:
  void run();
  void tick_locked(double now_seconds);

  const Params params_;
  Registry* registry_;
  std::ostream* sink_ = nullptr;

  mutable std::mutex mu_;        // guards everything below + tick execution
  std::condition_variable cv_;   // wakes the thread for prompt stop
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;

  Snapshot prev_;
  bool have_prev_ = false;
  double prev_at_seconds_ = 0.0;
  double prev_process_cpu_ = 0.0;
  std::vector<std::pair<std::string, double>> prev_thread_cpu_;
  std::uint64_t seq_ = 0;
  std::deque<JsonValue> ring_;
};

/// Validates a parsed baps.timeseries.v1 stream (one JsonValue per line).
/// Checks schema tags, strictly increasing seq from 0, non-decreasing time,
/// per-instrument delta/value consistency across consecutive records,
/// per_second ≈ delta/interval, quantile ordering p50 ≤ p95 ≤ p99, and
/// monotone process CPU. Returns false and fills *error on the first
/// violation. An empty stream is invalid.
bool validate_timeseries_lines(const std::vector<JsonValue>& lines,
                               std::string* error);

/// Reads a JSONL file and validates it with validate_timeseries_lines.
bool validate_timeseries_file(const std::string& path, std::string* error);

}  // namespace baps::obs
