// Minimal JSON document model for the observability layer: exporters build
// JsonValue trees, the report writer serializes them, and tests (plus
// tools/report_check) parse emitted artifacts back for validation.
//
// Deliberately small: objects preserve insertion order (stable report
// schemas, byte-reproducible output), integers stay exact through a
// round-trip (hit counters must survive serialize→parse→recompute), and
// doubles are printed with round-trip precision.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace baps::obs {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// Ordered key/value pairs; duplicate keys are a caller bug.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

class JsonValue {
 public:
  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(std::int64_t i) : v_(i) {}
  JsonValue(std::uint64_t u) : v_(u) {}
  JsonValue(int i) : v_(static_cast<std::int64_t>(i)) {}
  JsonValue(unsigned u) : v_(static_cast<std::uint64_t>(u)) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(const char* s) : v_(std::string(s)) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(JsonArray a) : v_(std::move(a)) {}
  JsonValue(JsonObject o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_uint() const { return std::holds_alternative<std::uint64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  /// Any of int / uint / double.
  bool is_number() const { return is_int() || is_uint() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  /// Numeric accessors convert between the three numeric alternatives.
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(v_); }
  JsonArray& as_array() { return std::get<JsonArray>(v_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(v_); }
  JsonObject& as_object() { return std::get<JsonObject>(v_); }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  JsonValue* find(const std::string& key) {
    return const_cast<JsonValue*>(std::as_const(*this).find(key));
  }
  /// Object member lookup that throws InvariantError when absent.
  const JsonValue& at(const std::string& key) const;

  /// Appends a member to an object value.
  void set(std::string key, JsonValue value);

  /// Serializes; indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;
  void dump_to(std::ostream& os, int indent = 0, int depth = 0) const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
               std::string, JsonArray, JsonObject>
      v_;
};

/// Builds an object from an initializer-style vector (helper for exporters).
inline JsonValue json_object(JsonObject members) {
  return JsonValue(std::move(members));
}

/// Escapes and quotes a string per RFC 8259.
std::string json_escape(const std::string& s);

/// Parses a JSON document. Returns nullopt (and fills *error with a
/// position-tagged message) on malformed input. Numbers without '.', 'e',
/// or a sign that fit are kept as exact integers.
std::optional<JsonValue> json_parse(const std::string& text,
                                    std::string* error = nullptr);

}  // namespace baps::obs
