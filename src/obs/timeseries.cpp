#include "obs/timeseries.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <map>
#include <ostream>
#include <utility>

#include "obs/proc_stats.hpp"
#include "obs/timer.hpp"

namespace baps::obs {

namespace {

JsonValue labels_json(const Labels& labels) {
  JsonObject o;
  for (const auto& [k, v] : labels) o.emplace_back(k, JsonValue(v));
  return JsonValue(std::move(o));
}

// (name, labels) ordering shared by all snapshot sample vectors; snapshots
// arrive sorted (Registry::snapshot contract), which the lockstep merges
// below depend on.
template <typename Sample>
int sample_cmp(const Sample& a, const Sample& b) {
  if (a.name != b.name) return a.name < b.name ? -1 : 1;
  if (a.labels != b.labels) return a.labels < b.labels ? -1 : 1;
  return 0;
}

/// Bucket-wise clamped difference cur - prev; a reset (cur.count <
/// prev.count) treats prev as empty so the interval re-baselines instead of
/// going negative.
HistogramSample histogram_delta(const HistogramSample* prev,
                                const HistogramSample& cur) {
  HistogramSample d = cur;
  if (prev == nullptr || cur.count < prev->count ||
      prev->buckets.size() != cur.buckets.size()) {
    return d;
  }
  d.count = cur.count - prev->count;
  d.sum = cur.sum - prev->sum;
  d.underflow =
      cur.underflow >= prev->underflow ? cur.underflow - prev->underflow : 0;
  d.overflow =
      cur.overflow >= prev->overflow ? cur.overflow - prev->overflow : 0;
  for (std::size_t i = 0; i < d.buckets.size(); ++i) {
    d.buckets[i] = cur.buckets[i] >= prev->buckets[i]
                       ? cur.buckets[i] - prev->buckets[i]
                       : 0;
  }
  return d;
}

}  // namespace

JsonValue timeseries_record(const Snapshot& prev, const Snapshot& cur,
                            double interval_seconds, double at_seconds,
                            std::uint64_t seq) {
  JsonValue rec = json_object({});
  rec.set("schema", JsonValue(kTimeSeriesSchema));
  rec.set("seq", JsonValue(seq));
  rec.set("at_seconds", JsonValue(at_seconds));
  rec.set("interval_seconds", JsonValue(interval_seconds));

  JsonArray counters;
  {
    std::size_t j = 0;
    for (const CounterSample& c : cur.counters) {
      while (j < prev.counters.size() &&
             sample_cmp(prev.counters[j], c) < 0) {
        ++j;
      }
      std::uint64_t before = 0;
      if (j < prev.counters.size() && sample_cmp(prev.counters[j], c) == 0) {
        before = prev.counters[j].value;
      }
      // Reset (value < before) re-baselines: the whole current value is the
      // interval's delta.
      const std::uint64_t delta =
          c.value >= before ? c.value - before : c.value;
      const double rate = interval_seconds > 0.0
                              ? static_cast<double>(delta) / interval_seconds
                              : 0.0;
      counters.push_back(json_object({{"name", JsonValue(c.name)},
                                      {"labels", labels_json(c.labels)},
                                      {"value", JsonValue(c.value)},
                                      {"delta", JsonValue(delta)},
                                      {"per_second", JsonValue(rate)}}));
    }
  }
  rec.set("counters", JsonValue(std::move(counters)));

  JsonArray gauges;
  for (const GaugeSample& g : cur.gauges) {
    gauges.push_back(json_object({{"name", JsonValue(g.name)},
                                  {"labels", labels_json(g.labels)},
                                  {"value", JsonValue(g.value)}}));
  }
  rec.set("gauges", JsonValue(std::move(gauges)));

  JsonArray histograms;
  {
    std::size_t j = 0;
    for (const HistogramSample& h : cur.histograms) {
      while (j < prev.histograms.size() &&
             sample_cmp(prev.histograms[j], h) < 0) {
        ++j;
      }
      const HistogramSample* before = nullptr;
      if (j < prev.histograms.size() &&
          sample_cmp(prev.histograms[j], h) == 0) {
        before = &prev.histograms[j];
      }
      const HistogramSample d = histogram_delta(before, h);
      histograms.push_back(json_object(
          {{"name", JsonValue(h.name)},
           {"labels", labels_json(h.labels)},
           {"count", JsonValue(h.count)},
           {"count_delta", JsonValue(d.count)},
           {"sum_delta", JsonValue(d.sum)},
           {"p50", JsonValue(sample_quantile(d, 0.50))},
           {"p95", JsonValue(sample_quantile(d, 0.95))},
           {"p99", JsonValue(sample_quantile(d, 0.99))}}));
    }
  }
  rec.set("histograms", JsonValue(std::move(histograms)));
  return rec;
}

// ---------------------------------------------------------------------------
// TimeSeriesSampler
// ---------------------------------------------------------------------------

TimeSeriesSampler::TimeSeriesSampler(Params params, Registry* registry)
    : params_(params), registry_(registry) {}

TimeSeriesSampler::~TimeSeriesSampler() { stop(); }

void TimeSeriesSampler::set_sink(std::ostream* sink) {
  std::scoped_lock lock(mu_);
  sink_ = sink;
}

void TimeSeriesSampler::start() {
  std::scoped_lock lock(mu_);
  if (running_) return;
  stop_requested_ = false;
  tick_locked(monotonic_seconds());  // seq-0 baseline
  running_ = true;
  thread_ = std::thread([this] { run(); });
}

void TimeSeriesSampler::stop() {
  {
    std::scoped_lock lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::scoped_lock lock(mu_);
  tick_locked(monotonic_seconds());  // final interval: the run's end state
  running_ = false;
}

void TimeSeriesSampler::sample_now() {
  std::scoped_lock lock(mu_);
  tick_locked(monotonic_seconds());
}

std::uint64_t TimeSeriesSampler::intervals_captured() const {
  std::scoped_lock lock(mu_);
  return seq_;
}

JsonValue TimeSeriesSampler::window_json(std::size_t max_intervals) const {
  std::scoped_lock lock(mu_);
  JsonValue out = json_object({});
  out.set("schema", JsonValue(kTimeSeriesWindowSchema));
  out.set("interval_seconds", JsonValue(params_.interval_seconds));
  JsonArray intervals;
  std::size_t take = ring_.size();
  if (max_intervals > 0 && max_intervals < take) take = max_intervals;
  for (std::size_t i = ring_.size() - take; i < ring_.size(); ++i) {
    intervals.push_back(ring_[i]);
  }
  out.set("intervals", JsonValue(std::move(intervals)));
  return out;
}

void TimeSeriesSampler::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock,
                 std::chrono::duration<double>(params_.interval_seconds),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    tick_locked(monotonic_seconds());
  }
}

void TimeSeriesSampler::tick_locked(double now_seconds) {
  Snapshot cur = registry_->snapshot();
  const double interval = have_prev_ ? now_seconds - prev_at_seconds_ : 0.0;
  JsonValue rec = timeseries_record(have_prev_ ? prev_ : Snapshot{}, cur,
                                    interval, now_seconds, seq_);

  if (params_.process_stats) {
    const ProcessSample ps = sample_process();
    JsonValue proc = json_object({});
    proc.set("valid", JsonValue(ps.valid));
    proc.set("rss_bytes", JsonValue(ps.rss_bytes));
    proc.set("cpu_seconds", JsonValue(ps.cpu_seconds));
    double cpu_delta = have_prev_ ? ps.cpu_seconds - prev_process_cpu_ : 0.0;
    if (cpu_delta < 0.0) cpu_delta = 0.0;
    proc.set("cpu_delta_seconds", JsonValue(cpu_delta));

    JsonArray threads;
    auto samples = ThreadCpuTracker::global().sample();
    std::vector<bool> used(prev_thread_cpu_.size(), false);
    for (const auto& t : samples) {
      // Names repeat (e.g. several "netio_worker"s); pair each current
      // reading with the first unconsumed previous reading of the same name.
      double before = -1.0;
      for (std::size_t i = 0; i < prev_thread_cpu_.size(); ++i) {
        if (!used[i] && prev_thread_cpu_[i].first == t.name) {
          used[i] = true;
          before = prev_thread_cpu_[i].second;
          break;
        }
      }
      double t_delta = before >= 0.0 ? t.cpu_seconds - before : 0.0;
      if (t_delta < 0.0) t_delta = 0.0;
      threads.push_back(
          json_object({{"name", JsonValue(t.name)},
                       {"cpu_seconds", JsonValue(t.cpu_seconds)},
                       {"cpu_delta_seconds", JsonValue(t_delta)}}));
    }
    proc.set("threads", JsonValue(std::move(threads)));

    if (AllocSampler hook = alloc_sampler()) {
      const AllocStats a = hook();
      proc.set("alloc",
               JsonValue(json_object({{"count", JsonValue(a.count)},
                                      {"bytes", JsonValue(a.bytes)}})));
    }
    rec.set("process", std::move(proc));

    prev_process_cpu_ = ps.cpu_seconds;
    prev_thread_cpu_.clear();
    prev_thread_cpu_.reserve(samples.size());
    for (const auto& t : samples) {
      prev_thread_cpu_.emplace_back(t.name, t.cpu_seconds);
    }
  }

  if (sink_ != nullptr) {
    rec.dump_to(*sink_);
    *sink_ << '\n';
    sink_->flush();
  }
  ring_.push_back(std::move(rec));
  while (ring_.size() > params_.ring_capacity) ring_.pop_front();

  prev_ = std::move(cur);
  have_prev_ = true;
  prev_at_seconds_ = now_seconds;
  ++seq_;
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

namespace {

bool vfail(std::string* error, std::size_t line, const std::string& msg) {
  if (error != nullptr) {
    *error = "timeseries line " + std::to_string(line + 1) + ": " + msg;
  }
  return false;
}

/// Stable per-instrument key from the record's name + labels object.
std::string entry_key(const JsonValue& entry) {
  std::string key = entry.at("name").as_string();
  if (const JsonValue* labels = entry.find("labels");
      labels != nullptr && labels->is_object()) {
    for (const auto& [k, v] : labels->as_object()) {
      key += '\x1f';
      key += k;
      key += '\x1e';
      key += v.is_string() ? v.as_string() : v.dump();
    }
  }
  return key;
}

bool finite_number(const JsonValue* v) {
  return v != nullptr && v->is_number() && std::isfinite(v->as_double());
}

}  // namespace

bool validate_timeseries_lines(const std::vector<JsonValue>& lines,
                               std::string* error) {
  if (lines.empty()) {
    if (error != nullptr) *error = "timeseries stream is empty";
    return false;
  }
  std::uint64_t prev_seq = 0;
  double prev_at = 0.0;
  double prev_cpu = 0.0;
  bool have_cpu = false;
  std::map<std::string, std::uint64_t> prev_counters;
  std::map<std::string, std::uint64_t> prev_hist_counts;

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const JsonValue& rec = lines[i];
    if (!rec.is_object()) return vfail(error, i, "record is not an object");
    const JsonValue* schema = rec.find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->as_string() != kTimeSeriesSchema) {
      return vfail(error, i, std::string("schema must be ") +
                                 kTimeSeriesSchema);
    }
    const JsonValue* seq = rec.find("seq");
    if (seq == nullptr || !seq->is_number()) {
      return vfail(error, i, "missing numeric seq");
    }
    const std::uint64_t s = seq->as_uint();
    if (i == 0) {
      if (s != 0) return vfail(error, i, "first record must have seq 0");
    } else if (s <= prev_seq) {
      return vfail(error, i, "seq not strictly increasing");
    }
    prev_seq = s;

    const JsonValue* at = rec.find("at_seconds");
    const JsonValue* interval = rec.find("interval_seconds");
    if (!finite_number(at) || !finite_number(interval)) {
      return vfail(error, i, "missing finite at_seconds/interval_seconds");
    }
    const double at_s = at->as_double();
    const double interval_s = interval->as_double();
    if (interval_s < 0.0) return vfail(error, i, "negative interval_seconds");
    if (i > 0 && at_s < prev_at) {
      return vfail(error, i, "at_seconds went backwards");
    }
    prev_at = at_s;

    const JsonValue* counters = rec.find("counters");
    if (counters == nullptr || !counters->is_array()) {
      return vfail(error, i, "missing counters array");
    }
    std::map<std::string, std::uint64_t> cur_counters;
    for (const JsonValue& c : counters->as_array()) {
      if (!c.is_object() || c.find("name") == nullptr ||
          !c.at("name").is_string()) {
        return vfail(error, i, "counter entry missing name");
      }
      const JsonValue* value = c.find("value");
      const JsonValue* delta = c.find("delta");
      const JsonValue* rate = c.find("per_second");
      if (value == nullptr || !value->is_number() || delta == nullptr ||
          !delta->is_number() || !finite_number(rate)) {
        return vfail(error, i, "counter " + c.at("name").as_string() +
                                   " missing value/delta/per_second");
      }
      const std::uint64_t v = value->as_uint();
      const std::uint64_t d = delta->as_uint();
      const std::string key = entry_key(c);
      std::uint64_t before = 0;
      if (auto it = prev_counters.find(key); it != prev_counters.end()) {
        before = it->second;
      }
      const std::uint64_t expect = v >= before ? v - before : v;
      if (d != expect) {
        return vfail(error, i,
                     "counter " + c.at("name").as_string() +
                         " delta inconsistent with previous record");
      }
      const double r = rate->as_double();
      if (interval_s > 0.0) {
        const double want = static_cast<double>(d) / interval_s;
        const double tol = 1e-6 * std::max(1.0, want);
        if (std::fabs(r - want) > tol) {
          return vfail(error, i, "counter " + c.at("name").as_string() +
                                     " per_second != delta/interval");
        }
      } else if (r != 0.0) {
        return vfail(error, i, "counter " + c.at("name").as_string() +
                                   " nonzero rate with zero interval");
      }
      cur_counters[key] = v;
    }
    prev_counters = std::move(cur_counters);

    const JsonValue* gauges = rec.find("gauges");
    if (gauges == nullptr || !gauges->is_array()) {
      return vfail(error, i, "missing gauges array");
    }
    for (const JsonValue& g : gauges->as_array()) {
      if (!g.is_object() || g.find("name") == nullptr ||
          !finite_number(g.find("value"))) {
        return vfail(error, i, "gauge entry missing name/finite value");
      }
    }

    const JsonValue* histograms = rec.find("histograms");
    if (histograms == nullptr || !histograms->is_array()) {
      return vfail(error, i, "missing histograms array");
    }
    std::map<std::string, std::uint64_t> cur_hists;
    for (const JsonValue& h : histograms->as_array()) {
      if (!h.is_object() || h.find("name") == nullptr ||
          !h.at("name").is_string()) {
        return vfail(error, i, "histogram entry missing name");
      }
      const std::string name = h.at("name").as_string();
      const JsonValue* count = h.find("count");
      const JsonValue* count_delta = h.find("count_delta");
      if (count == nullptr || !count->is_number() || count_delta == nullptr ||
          !count_delta->is_number() || !finite_number(h.find("sum_delta"))) {
        return vfail(error, i,
                     "histogram " + name + " missing count/delta fields");
      }
      const std::uint64_t cnt = count->as_uint();
      const std::uint64_t d = count_delta->as_uint();
      const std::string key = entry_key(h);
      std::uint64_t before = 0;
      if (auto it = prev_hist_counts.find(key); it != prev_hist_counts.end()) {
        before = it->second;
      }
      const std::uint64_t expect = cnt >= before ? cnt - before : cnt;
      if (d != expect) {
        return vfail(error, i, "histogram " + name +
                                   " count_delta inconsistent with previous");
      }
      const JsonValue* p50 = h.find("p50");
      const JsonValue* p95 = h.find("p95");
      const JsonValue* p99 = h.find("p99");
      if (!finite_number(p50) || !finite_number(p95) || !finite_number(p99)) {
        return vfail(error, i, "histogram " + name + " missing quantiles");
      }
      if (p50->as_double() > p95->as_double() ||
          p95->as_double() > p99->as_double()) {
        return vfail(error, i,
                     "histogram " + name + " quantiles not ordered");
      }
      cur_hists[key] = cnt;
    }
    prev_hist_counts = std::move(cur_hists);

    if (const JsonValue* proc = rec.find("process")) {
      if (!proc->is_object()) {
        return vfail(error, i, "process block is not an object");
      }
      if (!finite_number(proc->find("cpu_seconds")) ||
          !finite_number(proc->find("cpu_delta_seconds"))) {
        return vfail(error, i, "process block missing cpu fields");
      }
      const double cpu = proc->at("cpu_seconds").as_double();
      if (have_cpu && cpu + 1e-9 < prev_cpu) {
        return vfail(error, i, "process cpu_seconds went backwards");
      }
      prev_cpu = cpu;
      have_cpu = true;
    }
  }
  return true;
}

bool validate_timeseries_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::vector<JsonValue> lines;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string perr;
    auto parsed = json_parse(line, &perr);
    if (!parsed) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(lineno) + ": " + perr;
      }
      return false;
    }
    lines.push_back(std::move(*parsed));
  }
  return validate_timeseries_lines(lines, error);
}

}  // namespace baps::obs
