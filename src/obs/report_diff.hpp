// Performance-regression comparator over committed artifacts: diffs two
// baps.report.v1 reports (or a baps.bench_hotpath.v1 history file against a
// report) on their throughput gauges, with tolerance bands, and says whether
// the current side regressed. tools/report_diff wraps this as the CI gate
// for the Release replay-throughput job.
//
// Two modes, auto-detected from the schemas:
//
//  * report vs report — the same machine produced both (an A/B in one CI
//    job), so absolute req/s are comparable: every throughput gauge present
//    in both is compared directly, regression = current below baseline by
//    more than the tolerance.
//
//  * hotpath baseline involved — BENCH_hotpath.json entries were measured
//    on different machines than the CI runner, so absolute req/s are NOT
//    comparable. Both sides are geomean-normalized over the shared
//    organizations first, and the gate checks the *shape*: an org whose
//    normalized throughput falls more than the tolerance below the
//    baseline's normalized value regressed relative to its peers. A uniform
//    slowdown (slower machine) cancels out; a lopsided one (someone broke
//    the browsers-aware fast path) does not. The default tolerance is
//    correspondingly loose.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace baps::obs {

struct ReportDiffOptions {
  /// Allowed relative drop in percent before a comparison fails. Negative
  /// selects the mode default: 20 for report-vs-report, 50 for the
  /// geomean-normalized hotpath mode.
  double tolerance_pct = -1.0;

  /// Per-metric-name overrides of tolerance_pct.
  std::map<std::string, double> metric_tolerances;

  /// Gauge families compared in report-vs-report mode.
  std::vector<std::string> metric_names = {"replay_requests_per_second",
                                           "store_replay_requests_per_second"};

  /// Self-test hook: scales every current-side value down by this percent
  /// (after normalization in hotpath mode, so the seeded regression cannot
  /// cancel out) to prove the gate actually fails when throughput drops.
  double inject_regression_pct = 0.0;
};

struct ReportDiffResult {
  bool ok = true;
  /// Human-readable regression findings (empty iff ok).
  std::vector<std::string> findings;
  /// Non-failing observations: improvements, skipped instances, mode notes.
  std::vector<std::string> notes;
  /// Comparisons that actually ran; 0 comparisons with ok=true means the
  /// inputs shared nothing — the caller should treat that as suspicious.
  std::size_t compared = 0;
};

/// Diffs `current` against `baseline` (each a parsed baps.report.v1 or
/// baps.bench_hotpath.v1 document). Never throws on malformed input: an
/// unrecognized schema or missing metrics produce ok=false with a finding.
ReportDiffResult diff_reports(const JsonValue& baseline,
                              const JsonValue& current,
                              const ReportDiffOptions& options = {});

}  // namespace baps::obs
