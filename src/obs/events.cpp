#include "obs/events.hpp"

#include <ostream>

namespace baps::obs {

const FieldValue* Event::field(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Event::str(const std::string& key) const {
  const FieldValue* v = field(key);
  if (!v) return {};
  if (const auto* s = std::get_if<std::string>(v)) return *s;
  return {};
}

JsonValue Event::to_json() const {
  JsonObject o;
  o.emplace_back("event", JsonValue(name));
  for (const auto& [k, v] : fields) {
    o.emplace_back(
        k, std::visit([](const auto& x) { return JsonValue(x); }, v));
  }
  return JsonValue(std::move(o));
}

void MemorySink::emit(const Event& event) {
  std::scoped_lock lock(mu_);
  events_.push_back(event);
}

std::vector<Event> MemorySink::events() const {
  std::scoped_lock lock(mu_);
  return events_;
}

std::vector<Event> MemorySink::named(const std::string& name) const {
  std::scoped_lock lock(mu_);
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.name == name) out.push_back(e);
  }
  return out;
}

std::size_t MemorySink::size() const {
  std::scoped_lock lock(mu_);
  return events_.size();
}

void MemorySink::clear() {
  std::scoped_lock lock(mu_);
  events_.clear();
}

void JsonlSink::emit(const Event& event) {
  const std::string line = event.to_json().dump();
  std::scoped_lock lock(mu_);
  os_ << line << '\n';
}

}  // namespace baps::obs
