#include "obs/events.hpp"

#include <ostream>

#include "obs/registry.hpp"

namespace baps::obs {

const FieldValue* Event::field(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Event::str(const std::string& key) const {
  const FieldValue* v = field(key);
  if (!v) return {};
  if (const auto* s = std::get_if<std::string>(v)) return *s;
  return {};
}

JsonValue Event::to_json() const {
  JsonObject o;
  o.emplace_back("event", JsonValue(name));
  for (const auto& [k, v] : fields) {
    o.emplace_back(
        k, std::visit([](const auto& x) { return JsonValue(x); }, v));
  }
  return JsonValue(std::move(o));
}

void MemorySink::emit(const Event& event) {
  {
    std::scoped_lock lock(mu_);
    if (events_.size() < capacity_) {
      events_.push_back(event);
      return;
    }
    ++dropped_;
  }
  // Counter bump outside the sink lock: the registry has its own locking
  // and an emitter may already hold instrument handles.
  Registry::global().counter("events_dropped_total").inc();
}

std::vector<Event> MemorySink::events() const {
  std::scoped_lock lock(mu_);
  return events_;
}

std::vector<Event> MemorySink::named(const std::string& name) const {
  std::scoped_lock lock(mu_);
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.name == name) out.push_back(e);
  }
  return out;
}

std::size_t MemorySink::size() const {
  std::scoped_lock lock(mu_);
  return events_.size();
}

std::uint64_t MemorySink::dropped() const {
  std::scoped_lock lock(mu_);
  return dropped_;
}

void MemorySink::clear() {
  std::scoped_lock lock(mu_);
  events_.clear();
  dropped_ = 0;
}

JsonlSink::~JsonlSink() { flush(); }

void JsonlSink::emit(const Event& event) {
  const std::string line = event.to_json().dump();
  std::scoped_lock lock(mu_);
  os_ << line << '\n';
  if (flush_each_) os_.flush();
}

void JsonlSink::flush() {
  std::scoped_lock lock(mu_);
  os_.flush();
}

}  // namespace baps::obs
