// Structured event tracing: instrumented components emit typed key/value
// events into an EventSink. The runtime protocol engine feeds one event per
// fetch and one per message envelope, so audits (e.g. the §6.2 anonymity
// property) query records instead of poking at counters.
//
// Sinks: MemorySink buffers events for tests and in-process queries;
// JsonlSink streams one JSON object per line (the standard greppable /
// jq-able trace format). Both are thread-safe.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "obs/json.hpp"

namespace baps::obs {

using FieldValue =
    std::variant<bool, std::int64_t, std::uint64_t, double, std::string>;

struct Event {
  std::string name;
  std::vector<std::pair<std::string, FieldValue>> fields;

  Event() = default;
  explicit Event(std::string event_name) : name(std::move(event_name)) {}

  Event& with(std::string key, FieldValue value) {
    fields.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// First field with this key, nullptr if absent.
  const FieldValue* field(const std::string& key) const;
  /// String field value, or empty when absent / not a string.
  std::string str(const std::string& key) const;

  JsonValue to_json() const;
};

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void emit(const Event& event) = 0;
};

/// Buffers every event in memory; the query surface for tests.
class MemorySink final : public EventSink {
 public:
  void emit(const Event& event) override;

  std::vector<Event> events() const;
  /// Events with the given name.
  std::vector<Event> named(const std::string& name) const;
  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// Streams events as JSON Lines to an ostream the caller keeps alive.
class JsonlSink final : public EventSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(os) {}
  void emit(const Event& event) override;

 private:
  std::mutex mu_;
  std::ostream& os_;
};

}  // namespace baps::obs
