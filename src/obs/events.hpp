// Structured event tracing: instrumented components emit typed key/value
// events into an EventSink. The runtime protocol engine feeds one event per
// fetch and one per message envelope, so audits (e.g. the §6.2 anonymity
// property) query records instead of poking at counters.
//
// Sinks: MemorySink buffers events for tests and in-process queries;
// JsonlSink streams one JSON object per line (the standard greppable /
// jq-able trace format). Both are thread-safe.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "obs/json.hpp"

namespace baps::obs {

using FieldValue =
    std::variant<bool, std::int64_t, std::uint64_t, double, std::string>;

struct Event {
  std::string name;
  std::vector<std::pair<std::string, FieldValue>> fields;

  Event() = default;
  explicit Event(std::string event_name) : name(std::move(event_name)) {}

  Event& with(std::string key, FieldValue value) {
    fields.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// First field with this key, nullptr if absent.
  const FieldValue* field(const std::string& key) const;
  /// String field value, or empty when absent / not a string.
  std::string str(const std::string& key) const;

  JsonValue to_json() const;
};

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void emit(const Event& event) = 0;
};

/// Buffers events in memory up to a capacity cap; the query surface for
/// tests and in-process introspection. Once full, new events are dropped
/// (oldest retained — the buffer is evidence of how a run started, and
/// replacing old events would silently rewrite it) and the drop is counted
/// both locally (dropped()) and in the global `events_dropped_total`
/// counter so reports surface the truncation.
class MemorySink final : public EventSink {
 public:
  /// Default cap fits any test workload while bounding a pathological trace.
  static constexpr std::size_t kDefaultCapacity = 1 << 20;

  explicit MemorySink(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void emit(const Event& event) override;

  std::vector<Event> events() const;
  /// Events with the given name.
  std::vector<Event> named(const std::string& name) const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Events rejected because the sink was full.
  std::uint64_t dropped() const;
  void clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
};

/// Streams events as JSON Lines to an ostream the caller keeps alive.
/// Flushes on destruction (and on request) so buffered lines survive an
/// abnormal daemon exit; set flush_each for crash-proof-per-line logging at
/// the cost of one flush per event.
class JsonlSink final : public EventSink {
 public:
  explicit JsonlSink(std::ostream& os, bool flush_each = false)
      : os_(os), flush_each_(flush_each) {}
  ~JsonlSink() override;

  void emit(const Event& event) override;
  void flush();

 private:
  std::mutex mu_;
  std::ostream& os_;
  const bool flush_each_;
};

}  // namespace baps::obs
