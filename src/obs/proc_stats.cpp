#include "obs/proc_stats.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <pthread.h>
#include <sys/resource.h>
#include <time.h>
#include <unistd.h>
#endif

namespace baps::obs {

namespace {

double clock_seconds(clockid_t id) {
#if defined(__unix__) || defined(__APPLE__)
  struct timespec ts;
  if (clock_gettime(id, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  (void)id;
  return 0.0;
#endif
}

std::uint64_t read_rss_bytes() {
#if defined(__linux__)
  // /proc/self/statm: size resident shared text lib data dt (pages).
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    unsigned long long size = 0, resident = 0;
    int n = std::fscanf(f, "%llu %llu", &size, &resident);
    std::fclose(f);
    if (n == 2) {
      long page = ::sysconf(_SC_PAGESIZE);
      if (page > 0) return resident * static_cast<std::uint64_t>(page);
    }
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
    // ru_maxrss is KiB on Linux, bytes on macOS; Linux is handled above, so
    // this fallback only fires where KiB is the worse guess.
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;
#endif
  }
#endif
  return 0;
}

}  // namespace

ProcessSample sample_process() {
  ProcessSample s;
#if defined(__unix__) || defined(__APPLE__)
  s.rss_bytes = read_rss_bytes();
  s.cpu_seconds = clock_seconds(CLOCK_PROCESS_CPUTIME_ID);
  s.valid = s.rss_bytes > 0 || s.cpu_seconds > 0.0;
#endif
  return s;
}

double current_thread_cpu_seconds() {
#if defined(__unix__) || defined(__APPLE__)
  return clock_seconds(CLOCK_THREAD_CPUTIME_ID);
#else
  return 0.0;
#endif
}

// ---------------------------------------------------------------------------
// ThreadCpuTracker
// ---------------------------------------------------------------------------

namespace {

struct TrackedThread {
  std::uint64_t token = 0;
  std::string name;
#if defined(__unix__) || defined(__APPLE__)
  pthread_t handle{};
#endif
};

struct TrackerState {
  mutable std::mutex mu;
  std::vector<TrackedThread> threads;
  std::uint64_t next_token = 1;
};

TrackerState& tracker_state() {
  static TrackerState* state = new TrackerState();  // leaked: outlive exit
  return *state;
}

}  // namespace

std::uint64_t ThreadCpuTracker::register_current_thread(std::string name) {
  TrackerState& st = tracker_state();
  std::lock_guard<std::mutex> lock(st.mu);
  TrackedThread t;
  t.token = st.next_token++;
  t.name = std::move(name);
#if defined(__unix__) || defined(__APPLE__)
  t.handle = pthread_self();
#endif
  st.threads.push_back(std::move(t));
  return st.threads.back().token;
}

void ThreadCpuTracker::unregister(std::uint64_t token) {
  TrackerState& st = tracker_state();
  std::lock_guard<std::mutex> lock(st.mu);
  for (std::size_t i = 0; i < st.threads.size(); ++i) {
    if (st.threads[i].token == token) {
      st.threads.erase(st.threads.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

std::vector<ThreadCpuTracker::ThreadCpu> ThreadCpuTracker::sample() const {
  std::vector<ThreadCpu> out;
  TrackerState& st = tracker_state();
  std::lock_guard<std::mutex> lock(st.mu);
  out.reserve(st.threads.size());
  for (const TrackedThread& t : st.threads) {
#if defined(__linux__)
    // The registration contract (unregister before thread exit, enforced by
    // ScopedThreadCpu) makes reading the clock of every listed thread safe.
    clockid_t id;
    if (pthread_getcpuclockid(t.handle, &id) != 0) continue;
    ThreadCpu tc;
    tc.name = t.name;
    tc.cpu_seconds = clock_seconds(id);
    out.push_back(std::move(tc));
#else
    (void)t;
#endif
  }
  return out;
}

std::size_t ThreadCpuTracker::size() const {
  TrackerState& st = tracker_state();
  std::lock_guard<std::mutex> lock(st.mu);
  return st.threads.size();
}

ThreadCpuTracker& ThreadCpuTracker::global() {
  static ThreadCpuTracker* tracker = new ThreadCpuTracker();  // leaked
  return *tracker;
}

// ---------------------------------------------------------------------------
// Allocation hook
// ---------------------------------------------------------------------------

namespace {
std::atomic<AllocSampler> g_alloc_sampler{nullptr};
}  // namespace

void set_alloc_sampler(AllocSampler sampler) {
  g_alloc_sampler.store(sampler, std::memory_order_release);
}

AllocSampler alloc_sampler() {
  return g_alloc_sampler.load(std::memory_order_acquire);
}

}  // namespace baps::obs
