// Process self-profiling for the time-series sampler: resident set size,
// process CPU time, and per-thread CPU time for threads that register
// themselves with the ThreadCpuTracker. All readings come straight from the
// OS (`/proc/self/statm`, `clock_gettime`) with no caching, so a sampler
// tick sees the process as it is at that instant. On platforms without the
// needed interfaces every reader degrades to "absent" (valid == false or an
// empty vector) rather than to a lie.
//
// Allocation counters ride behind a hook: the sampler calls the installed
// AllocSampler (if any) once per tick, so a build that wires its allocator
// (or a test double) gets alloc_count/alloc_bytes in the export and every
// other build pays nothing — not even an atomic on the allocation path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace baps::obs {

/// One point-in-time reading of the process.
struct ProcessSample {
  bool valid = false;
  std::uint64_t rss_bytes = 0;   ///< resident set size
  double cpu_seconds = 0.0;      ///< CLOCK_PROCESS_CPUTIME_ID
};

/// Reads RSS + process CPU. valid == false when the platform offers neither.
ProcessSample sample_process();

/// CPU seconds consumed by the calling thread
/// (clock_gettime(CLOCK_THREAD_CPUTIME_ID)); 0.0 when unsupported.
double current_thread_cpu_seconds();

/// Registry of named threads whose CPU time the sampler reads cross-thread
/// (pthread_getcpuclockid). Threads MUST unregister before exiting — reading
/// the clock of a dead thread is undefined — so use ScopedThreadCpu, whose
/// destructor unregisters, rather than the raw calls.
class ThreadCpuTracker {
 public:
  struct ThreadCpu {
    std::string name;
    double cpu_seconds = 0.0;
  };

  /// Registers the calling thread under `name`; returns a token for
  /// unregister(). Names need not be unique (e.g. "netio_worker" x4).
  std::uint64_t register_current_thread(std::string name);
  void unregister(std::uint64_t token);

  /// CPU seconds of every registered thread, registration order. Threads
  /// whose clock cannot be read (or on platforms without per-thread clocks)
  /// are omitted.
  std::vector<ThreadCpu> sample() const;

  std::size_t size() const;

  /// The process-wide tracker the sampler reads.
  static ThreadCpuTracker& global();

 private:
  struct Impl;
};

/// RAII registration with the global tracker.
class ScopedThreadCpu {
 public:
  explicit ScopedThreadCpu(std::string name)
      : token_(ThreadCpuTracker::global().register_current_thread(
            std::move(name))) {}
  ScopedThreadCpu(const ScopedThreadCpu&) = delete;
  ScopedThreadCpu& operator=(const ScopedThreadCpu&) = delete;
  ~ScopedThreadCpu() { ThreadCpuTracker::global().unregister(token_); }

 private:
  std::uint64_t token_;
};

/// Allocation totals supplied by the installed hook.
struct AllocStats {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

using AllocSampler = AllocStats (*)();

/// Installs (or with nullptr removes) the allocation hook the sampler polls.
void set_alloc_sampler(AllocSampler sampler);
AllocSampler alloc_sampler();

}  // namespace baps::obs
