// Thread-safe metrics registry: named, labeled families of counters, gauges,
// and histograms. Handles are resolved once (a mutex-protected map lookup)
// and are then lock-free atomics, cheap enough for hot paths — the thread
// pool, the object caches, and the experiment runner all bump them.
//
// A process-wide default registry (Registry::global()) mirrors the usual
// metrics-library shape: instrumented components publish there unless handed
// an explicit registry, and report writers snapshot it. snapshot() is a
// consistent-enough copy for reporting (individual values are atomic loads);
// reset() zeroes every instrument, which tests use for isolation.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace baps::obs {

/// Sorted key/value label pairs, e.g. {{"org","baps"},{"location","proxy"}}.
/// Order given by the caller is normalized (sorted by key) so the same label
/// set always names the same instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

/// CAS loop for atomically adding to a double. The exposed fallback for
/// toolchains without native atomic<double> fetch_add (a C++20 library
/// feature, advertised via __cpp_lib_atomic_float); also unit-tested
/// directly so the rarely-compiled path stays correct everywhere.
inline void add_double_cas(std::atomic<double>& v, double dx) {
  double cur = v.load(std::memory_order_relaxed);
  while (!v.compare_exchange_weak(cur, cur + dx, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Atomic v += dx: native fetch_add where the standard library provides the
/// floating-point overload, CAS loop otherwise. Relaxed ordering either way —
/// instruments are independent cells, not synchronization points.
inline void atomic_add_double(std::atomic<double>& v, double dx) {
#if defined(__cpp_lib_atomic_float)
  v.fetch_add(dx, std::memory_order_relaxed);
#else
  detail::add_double_cas(v, dx);
#endif
}

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depth, worker count, accumulated seconds).
class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }
  void add(double dx) { atomic_add_double(v_, dx); }
  void sub(double dx) { atomic_add_double(v_, -dx); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// How a histogram maps an observation onto its [lo, hi) bucket domain.
enum class HistScale {
  kLinear,  ///< buckets over x directly
  kLog10,   ///< buckets over log10(x); x <= 0 counts as underflow
};

/// Fixed-bucket concurrent histogram with explicit under/overflow buckets,
/// total count, and raw sum (for means). Observations never clamp: samples
/// outside [lo, hi) land in the under/overflow buckets so the exported
/// distribution is honest about its tails.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets,
            HistScale scale = HistScale::kLinear);

  void observe(double x);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  HistScale scale() const { return scale_; }
  std::size_t num_buckets() const { return counts_.size(); }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t underflow() const {
    return underflow_.load(std::memory_order_relaxed);
  }
  std::uint64_t overflow() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  void reset();

 private:
  double lo_;
  double hi_;
  HistScale scale_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> underflow_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// --------------------------------------------------------------------------
// Snapshots: plain-value copies for exporting.

struct CounterSample {
  std::string name;
  Labels labels;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  Labels labels;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  Labels labels;
  double lo = 0.0;
  double hi = 0.0;
  HistScale scale = HistScale::kLinear;
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;

  double mean() const {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
};

struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// First counter matching name+labels, nullptr if absent.
  const CounterSample* counter(const std::string& name,
                               const Labels& labels = {}) const;
};

/// Sorts every sample vector by (name, labels). Registry::snapshot() output
/// is already sorted; call this after appending derived samples so exported
/// reports stay byte-stable (diffs, federation merges).
void sort_snapshot(Snapshot& snapshot);

/// Quantile estimate (q in [0,1]) from a histogram sample, with linear
/// interpolation inside the chosen bucket. Underflow mass resolves to the
/// domain's low edge and overflow mass to the high edge — tails stay honest
/// but bounded. kLog10 samples are mapped back to the value domain, so the
/// result is in the observed units (e.g. seconds), not log-seconds.
/// Returns 0 for an empty sample.
double sample_quantile(const HistogramSample& sample, double q);

/// Prometheus-flavoured text exposition (one `name{labels} value` per line).
std::string to_text(const Snapshot& snapshot);

/// JSON exposition used inside report files.
JsonValue to_json(const Snapshot& snapshot);

// --------------------------------------------------------------------------

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Resolve-once instrument handles. The returned references live as long
  /// as the registry; repeated calls with the same name+labels return the
  /// same instrument. Histogram parameters must agree across calls.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t buckets,
                       HistScale scale = HistScale::kLinear,
                       const Labels& labels = {});

  Snapshot snapshot() const;

  /// Zeroes every registered instrument (instruments stay registered, so
  /// resolved handles remain valid).
  void reset();

  /// The process-wide default registry instrumented components publish to.
  static Registry& global();

 private:
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<T> instrument;
  };

  static std::string key_of(const std::string& name, const Labels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
};

}  // namespace baps::obs
