// Span-based distributed tracing. A Tracer mints trace ids, makes the
// sampling decision once per trace (a pure function of seed + trace id, so a
// seeded run samples the same requests every time), and records finished
// spans three ways at once:
//   * as "span" events into an optional EventSink (JsonlSink gives the
//     standard one-object-per-line span log, MemorySink the test surface);
//   * into per-stage latency histograms + span counters in a Registry
//     (trace_stage_seconds{stage=...}, trace_spans_total{kind=...});
//   * into a bounded in-memory ring of recent spans plus a top-K table of
//     the slowest root spans, from which slow_traces() reconstructs the
//     full span tree of the K slowest requests (the exemplar log).
//
// Cost model: an unsampled request takes one branch (context.sampled is
// false and every start_span call returns an inert Span); with no tracer
// attached the instrumented components skip even that. Nothing is recorded,
// no clock is read, and the metrics registry is untouched — which is what
// keeps sampling-off runs bit-identical to untraced ones.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/trace_context.hpp"

namespace baps::obs {

/// Every stage a traced request can pass through. Names are stable wire- and
/// report-visible identifiers; new kinds append.
enum class SpanKind : std::uint8_t {
  kClientFetch = 1,   ///< client-side browse(), the root of a request trace
  kIndexLookup = 2,   ///< proxy: browser-index holder lookup
  kCacheProbe = 3,    ///< proxy: own-cache probe
  kPeerTransfer = 4,  ///< proxy→holder fetch (or holder serving it)
  kOriginFetch = 5,   ///< proxy→origin fetch + watermark issuance
  kFrameSend = 6,     ///< one frame written to a socket
  kFrameRecv = 7,     ///< one frame read from a socket (payload + decode)
};

std::string span_kind_name(SpanKind kind);

/// Nanoseconds on the monotonic clock; the time base of span timestamps.
inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The deterministic sampling decision: a pure function of (seed, trace_id),
/// so two processes configured with the same seed agree and a rerun of a
/// seeded workload samples exactly the same traces. rate <= 0 never samples,
/// rate >= 1 always does.
bool trace_sampled(std::uint64_t seed, double rate, std::uint64_t trace_id);

/// One finished span, as stored and exported.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 for a root span
  SpanKind kind = SpanKind::kClientFetch;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;

  std::uint64_t duration_ns() const {
    return end_ns >= start_ns ? end_ns - start_ns : 0;
  }
  JsonValue to_json() const;
};

class Tracer;

/// RAII handle for an in-flight span: records itself into the tracer on
/// end() / destruction. Default-constructed (or unsampled) spans are inert —
/// no clock reads, no recording.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { move_from(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      end();
      move_from(other);
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// True when this span will be recorded on end().
  bool recording() const { return tracer_ != nullptr; }

  /// Context to hand to callees (and across the wire): same trace, this
  /// span as the parent. Valid even for inert spans of a sampled=false
  /// trace, so propagation code need not special-case.
  const TraceContext& context() const { return ctx_; }

  void end();

 private:
  friend class Tracer;
  void move_from(Span& other) {
    tracer_ = other.tracer_;
    ctx_ = other.ctx_;
    parent_id_ = other.parent_id_;
    kind_ = other.kind_;
    start_ns_ = other.start_ns_;
    other.tracer_ = nullptr;
  }

  Tracer* tracer_ = nullptr;  ///< null = inert
  TraceContext ctx_;
  std::uint64_t parent_id_ = 0;
  SpanKind kind_ = SpanKind::kClientFetch;
  std::uint64_t start_ns_ = 0;
};

class Tracer {
 public:
  struct Params {
    std::uint64_t seed = 1;
    double sample_rate = 0.0;  ///< [0,1]; 0 disables all recording
    /// Service name stamped on every exported span ("client", "proxyd").
    std::string service;
    /// Ring capacity for recent spans (the stitching / introspection buffer).
    std::size_t recent_capacity = 4096;
    /// How many slowest root spans to keep full exemplar trees for.
    std::size_t slow_trace_k = 8;
  };

  /// Metrics land in `registry` (defaults to the process-global one).
  explicit Tracer(const Params& params, Registry* registry = nullptr);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Span events stream here as they finish (nullptr detaches; not owned).
  void set_sink(EventSink* sink);

  bool enabled() const { return params_.sample_rate > 0.0; }
  const Params& params() const { return params_; }

  /// Mints the context for a new root span: fresh trace id (deterministic in
  /// seed + an internal counter) with the sampling decision applied.
  TraceContext make_root_context();

  /// Starts a span under `parent`. Returns an inert span (still carrying a
  /// propagatable context) unless the parent is sampled and tracing is on.
  Span start_span(SpanKind kind, const TraceContext& parent);

  /// Convenience: new trace + its root span in one step. When the sampler
  /// is off entirely (rate 0) this is a single branch returning an inert
  /// span with no context — a disabled tracer costs a request nothing.
  Span start_root_span(SpanKind kind);

  /// Records an already-timed span under `parent` — for I/O paths that only
  /// learn the trace context after the work is done (a frame's context is
  /// inside the bytes being received). No-op unless the parent is sampled.
  void record_span(SpanKind kind, const TraceContext& parent,
                   std::uint64_t start_ns, std::uint64_t end_ns);

  // --- introspection ------------------------------------------------------
  std::vector<SpanRecord> recent_spans(std::size_t max_spans = 0) const;

  struct SlowTrace {
    std::uint64_t trace_id = 0;
    std::uint64_t root_duration_ns = 0;
    std::vector<SpanRecord> spans;  ///< every retained span of the trace
  };
  /// The K slowest root spans seen so far, slowest first, each with the full
  /// span tree still present in the recent-span ring.
  std::vector<SlowTrace> slow_traces() const;
  JsonValue slow_traces_json() const;

  std::uint64_t spans_recorded() const;
  /// Spans evicted from the recent ring (they were still counted/exported).
  std::uint64_t spans_evicted() const;

 private:
  friend class Span;
  void finish_span(const Span& span, std::uint64_t end_ns);
  void record(const SpanRecord& rec);
  std::uint64_t next_span_id();

  Params params_;
  Registry* registry_;

  mutable std::mutex mu_;
  EventSink* sink_ = nullptr;  ///< optional, not owned
  // Lock-free: minting an id is on the per-request fast path even when the
  // sampler is off, so it must cost one atomic increment, not a mutex.
  std::atomic<std::uint64_t> trace_counter_{0};
  std::atomic<std::uint64_t> span_counter_{0};
  std::uint64_t span_nonce_;  ///< per-process salt for span ids
  std::vector<SpanRecord> recent_;  ///< ring buffer
  std::size_t recent_next_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t evicted_ = 0;
  struct SlowRoot {
    std::uint64_t trace_id = 0;
    std::uint64_t duration_ns = 0;
  };
  std::vector<SlowRoot> slow_;  ///< at most slow_trace_k, unordered
};

/// Derives latency-quantile gauges from the per-stage span histograms:
/// for every `trace_stage_seconds{stage=S}` histogram in `snap`, appends
/// `latency_quantile_seconds{stage=S,q=p50|p95|p99|p999}` gauges computed by
/// sample_quantile(). Snapshots without trace histograms pass through
/// untouched, so report writers can call this unconditionally.
Snapshot with_latency_quantiles(Snapshot snap);

/// Eagerly materializes every trace_* instrument — trace_spans_total{kind}
/// and trace_stage_seconds{stage} for all span kinds, zero-valued — so a
/// first time-series interval (and any report) sees the full family even
/// before a single span finishes. Labels are always present, matching the
/// report_check requirement that every trace instrument carries its
/// kind/stage label.
void register_trace_metric_families(Registry* registry = &Registry::global());

}  // namespace baps::obs
