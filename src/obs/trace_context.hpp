// The cross-process identity of one traced request: a trace id shared by
// every span the request touches (client, proxy daemon, peer listener), the
// span id of the caller's span (the parent of whatever the callee records),
// and the sampling decision made once at the root. The struct is the unit
// that crosses the wire — src/wire encodes it into an optional frame-header
// extension — so it stays a plain POD with no obs dependencies.
#pragma once

#include <cstdint>

namespace baps::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = no trace attached
  std::uint64_t span_id = 0;   ///< the caller's span; parent of callee spans
  bool sampled = false;        ///< decided at the root, honored everywhere

  bool valid() const { return trace_id != 0; }
};

inline bool operator==(const TraceContext& a, const TraceContext& b) {
  return a.trace_id == b.trace_id && a.span_id == b.span_id &&
         a.sampled == b.sampled;
}
inline bool operator!=(const TraceContext& a, const TraceContext& b) {
  return !(a == b);
}

}  // namespace baps::obs
