#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace baps::obs {

Histogram::Histogram(double lo, double hi, std::size_t buckets,
                     HistScale scale)
    : lo_(lo), hi_(hi), scale_(scale), counts_(buckets) {
  BAPS_REQUIRE(hi > lo, "histogram range must be nonempty");
  BAPS_REQUIRE(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::observe(double x) {
  atomic_add_double(sum_, x);
  count_.fetch_add(1, std::memory_order_relaxed);
  double t = x;
  if (scale_ == HistScale::kLog10) {
    if (x <= 0.0) {
      underflow_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    t = std::log10(x);
  }
  if (t < lo_) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (t >= hi_) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const double frac = (t - lo_) / (hi_ - lo_);
  auto idx =
      static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // t just below hi_
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  underflow_.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// --------------------------------------------------------------------------

const CounterSample* Snapshot::counter(const std::string& name,
                                       const Labels& labels) const {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& c : counters) {
    if (c.name == name && c.labels == sorted) return &c;
  }
  return nullptr;
}

namespace {

template <typename Sample>
bool sample_less(const Sample& a, const Sample& b) {
  if (a.name != b.name) return a.name < b.name;
  return a.labels < b.labels;
}

std::string labels_text(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += labels[i].first;
    out += '=';
    out += '"';
    out += labels[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

JsonValue labels_json(const Labels& labels) {
  JsonObject o;
  for (const auto& [k, v] : labels) o.emplace_back(k, JsonValue(v));
  return JsonValue(std::move(o));
}

}  // namespace

void sort_snapshot(Snapshot& snapshot) {
  std::stable_sort(snapshot.counters.begin(), snapshot.counters.end(),
                   sample_less<CounterSample>);
  std::stable_sort(snapshot.gauges.begin(), snapshot.gauges.end(),
                   sample_less<GaugeSample>);
  std::stable_sort(snapshot.histograms.begin(), snapshot.histograms.end(),
                   sample_less<HistogramSample>);
}

double sample_quantile(const HistogramSample& sample, double q) {
  if (sample.count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(sample.count);
  const auto value_at = [&](double t) {
    // t is a position in the bucket domain; undo the scale.
    return sample.scale == HistScale::kLog10 ? std::pow(10.0, t) : t;
  };
  double seen = static_cast<double>(sample.underflow);
  if (target <= seen) return value_at(sample.lo);
  const double width = (sample.hi - sample.lo) /
                       static_cast<double>(sample.buckets.size());
  for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
    const double n = static_cast<double>(sample.buckets[i]);
    if (target <= seen + n && n > 0.0) {
      const double frac = (target - seen) / n;
      const double t = sample.lo + (static_cast<double>(i) + frac) * width;
      return value_at(t);
    }
    seen += n;
  }
  return value_at(sample.hi);
}

std::string to_text(const Snapshot& snapshot) {
  std::ostringstream os;
  for (const auto& c : snapshot.counters) {
    os << c.name << labels_text(c.labels) << ' ' << c.value << '\n';
  }
  for (const auto& g : snapshot.gauges) {
    os << g.name << labels_text(g.labels) << ' ' << g.value << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    os << h.name << labels_text(h.labels) << "_count " << h.count << '\n';
    os << h.name << labels_text(h.labels) << "_sum " << h.sum << '\n';
  }
  return os.str();
}

JsonValue to_json(const Snapshot& snapshot) {
  JsonArray counters;
  for (const auto& c : snapshot.counters) {
    counters.push_back(json_object({{"name", JsonValue(c.name)},
                                    {"labels", labels_json(c.labels)},
                                    {"value", JsonValue(c.value)}}));
  }
  JsonArray gauges;
  for (const auto& g : snapshot.gauges) {
    gauges.push_back(json_object({{"name", JsonValue(g.name)},
                                  {"labels", labels_json(g.labels)},
                                  {"value", JsonValue(g.value)}}));
  }
  JsonArray histograms;
  for (const auto& h : snapshot.histograms) {
    JsonArray buckets(h.buckets.begin(), h.buckets.end());
    JsonValue hist;
    hist.set("name", JsonValue(h.name));
    hist.set("labels", labels_json(h.labels));
    hist.set("lo", JsonValue(h.lo));
    hist.set("hi", JsonValue(h.hi));
    hist.set("scale",
             JsonValue(h.scale == HistScale::kLog10 ? "log10" : "linear"));
    hist.set("underflow", JsonValue(h.underflow));
    hist.set("overflow", JsonValue(h.overflow));
    hist.set("buckets", JsonValue(std::move(buckets)));
    hist.set("count", JsonValue(h.count));
    hist.set("sum", JsonValue(h.sum));
    histograms.push_back(std::move(hist));
  }
  return json_object({{"counters", JsonValue(std::move(counters))},
                      {"gauges", JsonValue(std::move(gauges))},
                      {"histograms", JsonValue(std::move(histograms))}});
}

// --------------------------------------------------------------------------

std::string Registry::key_of(const std::string& name, const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  for (const auto& [k, v] : sorted) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  std::scoped_lock lock(mu_);
  auto [it, inserted] = counters_.try_emplace(key_of(name, labels));
  if (inserted) {
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    it->second = {name, std::move(sorted), std::make_unique<Counter>()};
  }
  return *it->second.instrument;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  std::scoped_lock lock(mu_);
  auto [it, inserted] = gauges_.try_emplace(key_of(name, labels));
  if (inserted) {
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    it->second = {name, std::move(sorted), std::make_unique<Gauge>()};
  }
  return *it->second.instrument;
}

Histogram& Registry::histogram(const std::string& name, double lo, double hi,
                               std::size_t buckets, HistScale scale,
                               const Labels& labels) {
  std::scoped_lock lock(mu_);
  auto [it, inserted] = histograms_.try_emplace(key_of(name, labels));
  if (inserted) {
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    it->second = {name, std::move(sorted),
                  std::make_unique<Histogram>(lo, hi, buckets, scale)};
  } else {
    const Histogram& h = *it->second.instrument;
    BAPS_REQUIRE(h.lo() == lo && h.hi() == hi && h.num_buckets() == buckets &&
                     h.scale() == scale,
                 "histogram re-registered with different parameters");
  }
  return *it->second.instrument;
}

Snapshot Registry::snapshot() const {
  std::scoped_lock lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, e] : counters_) {
    snap.counters.push_back({e.name, e.labels, e.instrument->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, e] : gauges_) {
    snap.gauges.push_back({e.name, e.labels, e.instrument->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, e] : histograms_) {
    const Histogram& h = *e.instrument;
    HistogramSample s;
    s.name = e.name;
    s.labels = e.labels;
    s.lo = h.lo();
    s.hi = h.hi();
    s.scale = h.scale();
    s.underflow = h.underflow();
    s.overflow = h.overflow();
    s.buckets.resize(h.num_buckets());
    for (std::size_t i = 0; i < h.num_buckets(); ++i) {
      s.buckets[i] = h.bucket(i);
    }
    s.count = h.count();
    s.sum = h.sum();
    snap.histograms.push_back(std::move(s));
  }
  // The maps iterate in key_of order, which is already (name, labels) — but
  // exporters depend on the ordering contract, so enforce it explicitly
  // rather than leaning on an encoding detail of the key format.
  sort_snapshot(snap);
  return snap;
}

void Registry::reset() {
  std::scoped_lock lock(mu_);
  for (auto& [key, e] : counters_) e.instrument->reset();
  for (auto& [key, e] : gauges_) e.instrument->reset();
  for (auto& [key, e] : histograms_) e.instrument->reset();
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

}  // namespace baps::obs
