#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace baps::obs {

std::int64_t JsonValue::as_int() const {
  if (is_int()) return std::get<std::int64_t>(v_);
  if (is_uint()) return static_cast<std::int64_t>(std::get<std::uint64_t>(v_));
  return static_cast<std::int64_t>(std::get<double>(v_));
}

std::uint64_t JsonValue::as_uint() const {
  if (is_uint()) return std::get<std::uint64_t>(v_);
  if (is_int()) {
    const std::int64_t i = std::get<std::int64_t>(v_);
    BAPS_REQUIRE(i >= 0, "negative JSON integer read as unsigned");
    return static_cast<std::uint64_t>(i);
  }
  return static_cast<std::uint64_t>(std::get<double>(v_));
}

double JsonValue::as_double() const {
  if (is_double()) return std::get<double>(v_);
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
  return static_cast<double>(std::get<std::uint64_t>(v_));
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  BAPS_REQUIRE(v != nullptr, "missing JSON object key");
  return *v;
}

void JsonValue::set(std::string key, JsonValue value) {
  if (!is_object()) v_ = JsonObject{};
  for (auto& [k, v] : as_object()) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  as_object().emplace_back(std::move(key), std::move(value));
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void write_double(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; null is the least-surprising stand-in.
    os << "null";
    return;
  }
  char buf[32];
  // Round-trip precision: a parsed-back double compares bit-equal, which the
  // report tests rely on when recomputing ratios.
  const int len = std::snprintf(buf, sizeof buf, "%.17g", d);
  os.write(buf, len);
}

void write_newline_indent(std::ostream& os, int indent, int depth) {
  if (indent <= 0) return;
  os.put('\n');
  for (int i = 0; i < indent * depth; ++i) os.put(' ');
}

}  // namespace

void JsonValue::dump_to(std::ostream& os, int indent, int depth) const {
  if (is_null()) {
    os << "null";
  } else if (is_bool()) {
    os << (as_bool() ? "true" : "false");
  } else if (is_int()) {
    os << std::get<std::int64_t>(v_);
  } else if (is_uint()) {
    os << std::get<std::uint64_t>(v_);
  } else if (is_double()) {
    write_double(os, std::get<double>(v_));
  } else if (is_string()) {
    os << json_escape(as_string());
  } else if (is_array()) {
    const JsonArray& a = as_array();
    os.put('[');
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i) os.put(',');
      write_newline_indent(os, indent, depth + 1);
      a[i].dump_to(os, indent, depth + 1);
    }
    if (!a.empty()) write_newline_indent(os, indent, depth);
    os.put(']');
  } else {
    const JsonObject& o = as_object();
    os.put('{');
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (i) os.put(',');
      write_newline_indent(os, indent, depth + 1);
      os << json_escape(o[i].first) << (indent > 0 ? ": " : ":");
      o[i].second.dump_to(os, indent, depth + 1);
    }
    if (!o.empty()) write_newline_indent(os, indent, depth);
    os.put('}');
  }
}

std::string JsonValue::dump(int indent) const {
  std::ostringstream os;
  dump_to(os, indent);
  return os.str();
}

// --------------------------------------------------------------------------
// Parser: plain recursive descent over the full grammar of RFC 8259.

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : s_(text), error_(error) {}

  std::optional<JsonValue> parse() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) {
      fail("trailing characters after JSON value");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (error_ && error_->empty()) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool expect(char c) {
    if (consume(c)) return true;
    fail(std::string("expected '") + c + "'");
    return false;
  }

  bool literal(const char* word, JsonValue value, JsonValue& out) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (s_.compare(pos_, len, word) != 0) {
      fail("invalid literal");
      return false;
    }
    pos_ += len;
    out = std::move(value);
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (s_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        std::string str;
        if (!parse_string(str)) return false;
        out = JsonValue(std::move(str));
        return true;
      }
      case 't': return literal("true", JsonValue(true), out);
      case 'f': return literal("false", JsonValue(false), out);
      case 'n': return literal("null", JsonValue(nullptr), out);
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    expect('{');
    JsonObject members;
    skip_ws();
    if (consume('}')) {
      out = JsonValue(std::move(members));
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      fail("expected ',' or '}' in object");
      return false;
    }
    out = JsonValue(std::move(members));
    return true;
  }

  bool parse_array(JsonValue& out) {
    expect('[');
    JsonArray items;
    skip_ws();
    if (consume(']')) {
      out = JsonValue(std::move(items));
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      items.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      fail("expected ',' or ']' in array");
      return false;
    }
    out = JsonValue(std::move(items));
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
              return false;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // report content is ASCII identifiers and numbers).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("invalid escape character");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (consume('.')) {
      integral = false;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start || (s_[start] == '-' && pos_ == start + 1)) {
      fail("invalid number");
      return false;
    }
    const char* first = s_.data() + start;
    const char* last = s_.data() + pos_;
    if (integral) {
      if (s_[start] == '-') {
        std::int64_t i = 0;
        if (std::from_chars(first, last, i).ec == std::errc{}) {
          out = JsonValue(i);
          return true;
        }
      } else {
        std::uint64_t u = 0;
        if (std::from_chars(first, last, u).ec == std::errc{}) {
          out = JsonValue(u);
          return true;
        }
      }
      // Out-of-range integer: fall through to double.
    }
    double d = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec != std::errc{} || ptr != last) {
      fail("invalid number");
      return false;
    }
    out = JsonValue(d);
    return true;
  }

  const std::string& s_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(const std::string& text,
                                    std::string* error) {
  if (error) error->clear();
  return Parser(text, error).parse();
}

}  // namespace baps::obs
