#include "obs/span.hpp"

#include <algorithm>
#include <utility>

namespace baps::obs {
namespace {

// splitmix64: the id/sampling mixer. Full-period, passes statistical tests,
// and crucially is a pure function — both processes of a traced run derive
// the same sampling decision from the same (seed, trace_id).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr char kStageHistName[] = "trace_stage_seconds";
// log10-seconds domain covering 100ns .. 1000s, same shape as
// netio_request_seconds.
constexpr double kStageLo = -7.0;
constexpr double kStageHi = 3.0;
constexpr std::size_t kStageBuckets = 50;

}  // namespace

std::string span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kClientFetch: return "client_fetch";
    case SpanKind::kIndexLookup: return "index_lookup";
    case SpanKind::kCacheProbe: return "cache_probe";
    case SpanKind::kPeerTransfer: return "peer_transfer";
    case SpanKind::kOriginFetch: return "origin_fetch";
    case SpanKind::kFrameSend: return "frame_send";
    case SpanKind::kFrameRecv: return "frame_recv";
  }
  return "unknown";
}

void register_trace_metric_families(Registry* registry) {
  static constexpr SpanKind kAllKinds[] = {
      SpanKind::kClientFetch, SpanKind::kIndexLookup, SpanKind::kCacheProbe,
      SpanKind::kPeerTransfer, SpanKind::kOriginFetch, SpanKind::kFrameSend,
      SpanKind::kFrameRecv};
  for (SpanKind kind : kAllKinds) {
    const std::string name = span_kind_name(kind);
    registry->counter("trace_spans_total", {{"kind", name}});
    registry->histogram(kStageHistName, kStageLo, kStageHi, kStageBuckets,
                        HistScale::kLog10, {{"stage", name}});
  }
}

bool trace_sampled(std::uint64_t seed, double rate, std::uint64_t trace_id) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // Top 53 bits of the mix → uniform double in [0, 1).
  const std::uint64_t h = mix64(seed ^ mix64(trace_id));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
  return u < rate;
}

JsonValue SpanRecord::to_json() const {
  return json_object({
      {"trace_id", JsonValue(trace_id)},
      {"span_id", JsonValue(span_id)},
      {"parent_id", JsonValue(parent_id)},
      {"kind", JsonValue(span_kind_name(kind))},
      {"start_ns", JsonValue(start_ns)},
      {"end_ns", JsonValue(end_ns)},
      {"duration_ns", JsonValue(duration_ns())},
  });
}

void Span::end() {
  if (tracer_ == nullptr) return;
  Tracer* t = tracer_;
  tracer_ = nullptr;  // a second end() is a no-op
  t->finish_span(*this, monotonic_ns());
}

Tracer::Tracer(const Params& params, Registry* registry)
    : params_(params),
      registry_(registry != nullptr ? registry : &Registry::global()),
      // Salt span ids with the address of a per-process object so two
      // processes of one trace never collide; trace ids stay purely
      // seed-derived (the sampler needs that).
      span_nonce_(mix64(params.seed ^
                        reinterpret_cast<std::uintptr_t>(this))) {
  if (params_.recent_capacity == 0) params_.recent_capacity = 1;
  recent_.reserve(params_.recent_capacity);
}

void Tracer::set_sink(EventSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink;
}

TraceContext Tracer::make_root_context() {
  const std::uint64_t n =
      trace_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  TraceContext ctx;
  ctx.trace_id = mix64(params_.seed ^ mix64(n));
  if (ctx.trace_id == 0) ctx.trace_id = 1;  // 0 means "no trace"
  ctx.span_id = 0;
  ctx.sampled = trace_sampled(params_.seed, params_.sample_rate, ctx.trace_id);
  return ctx;
}

std::uint64_t Tracer::next_span_id() {
  const std::uint64_t n =
      span_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t id = mix64(span_nonce_ ^ n);
  if (id == 0) id = 1;
  return id;
}

Span Tracer::start_span(SpanKind kind, const TraceContext& parent) {
  Span s;
  if (!parent.valid() || !parent.sampled || !enabled()) {
    // Inert, but still propagatable: callees of an unsampled trace must keep
    // seeing the same (unsampled) context.
    s.ctx_ = parent;
    return s;
  }
  s.tracer_ = this;
  s.ctx_.trace_id = parent.trace_id;
  s.ctx_.span_id = next_span_id();
  s.ctx_.sampled = true;
  s.parent_id_ = parent.span_id;
  s.kind_ = kind;
  s.start_ns_ = monotonic_ns();
  return s;
}

Span Tracer::start_root_span(SpanKind kind) {
  // Rate 0 means "tracing off": nothing this root could mint is observable
  // (unsampled contexts never go on the wire and never record), so the whole
  // call collapses to this one branch — that is the cost a disabled tracer
  // adds to a runtime request, and bench_replay --overhead-guard holds it
  // to its budget.
  if (!enabled()) return Span();
  return start_span(kind, make_root_context());
}

void Tracer::finish_span(const Span& span, std::uint64_t end_ns) {
  SpanRecord rec;
  rec.trace_id = span.ctx_.trace_id;
  rec.span_id = span.ctx_.span_id;
  rec.parent_id = span.parent_id_;
  rec.kind = span.kind_;
  rec.start_ns = span.start_ns_;
  rec.end_ns = end_ns;
  record(rec);
}

void Tracer::record_span(SpanKind kind, const TraceContext& parent,
                         std::uint64_t start_ns, std::uint64_t end_ns) {
  if (!enabled() || !parent.valid() || !parent.sampled) return;
  SpanRecord rec;
  rec.trace_id = parent.trace_id;
  rec.span_id = next_span_id();
  rec.parent_id = parent.span_id;
  rec.kind = kind;
  rec.start_ns = start_ns;
  rec.end_ns = end_ns;
  record(rec);
}

void Tracer::record(const SpanRecord& rec) {
  const std::string kind_name = span_kind_name(rec.kind);
  registry_->counter("trace_spans_total", {{"kind", kind_name}}).inc();
  registry_
      ->histogram(kStageHistName, kStageLo, kStageHi, kStageBuckets,
                  HistScale::kLog10, {{"stage", kind_name}})
      .observe(static_cast<double>(rec.duration_ns()) * 1e-9);

  EventSink* sink = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink = sink_;
    ++recorded_;
    if (recent_.size() < params_.recent_capacity) {
      recent_.push_back(rec);
    } else {
      ++evicted_;
      recent_[recent_next_] = rec;
      recent_next_ = (recent_next_ + 1) % params_.recent_capacity;
    }
    if (rec.parent_id == 0 && params_.slow_trace_k > 0) {
      if (slow_.size() < params_.slow_trace_k) {
        slow_.push_back({rec.trace_id, rec.duration_ns()});
      } else {
        auto fastest = std::min_element(
            slow_.begin(), slow_.end(),
            [](const SlowRoot& a, const SlowRoot& b) {
              return a.duration_ns < b.duration_ns;
            });
        if (rec.duration_ns() > fastest->duration_ns) {
          *fastest = {rec.trace_id, rec.duration_ns()};
        }
      }
    }
  }
  if (sink != nullptr) {
    Event ev("span");
    ev.with("service", params_.service)
        .with("trace_id", rec.trace_id)
        .with("span_id", rec.span_id)
        .with("parent_id", rec.parent_id)
        .with("kind", kind_name)
        .with("start_ns", rec.start_ns)
        .with("end_ns", rec.end_ns)
        .with("duration_ns", rec.duration_ns());
    sink->emit(ev);
  }
}

std::vector<SpanRecord> Tracer::recent_spans(std::size_t max_spans) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Oldest-first: the ring's insertion point splits old from new.
  std::vector<SpanRecord> out;
  out.reserve(recent_.size());
  if (recent_.size() == params_.recent_capacity) {
    out.insert(out.end(), recent_.begin() + recent_next_, recent_.end());
    out.insert(out.end(), recent_.begin(), recent_.begin() + recent_next_);
  } else {
    out = recent_;
  }
  if (max_spans > 0 && out.size() > max_spans) {
    out.erase(out.begin(), out.end() - max_spans);
  }
  return out;
}

std::vector<Tracer::SlowTrace> Tracer::slow_traces() const {
  std::vector<SlowRoot> roots;
  {
    std::lock_guard<std::mutex> lock(mu_);
    roots = slow_;
  }
  std::sort(roots.begin(), roots.end(),
            [](const SlowRoot& a, const SlowRoot& b) {
              return a.duration_ns > b.duration_ns;
            });
  const std::vector<SpanRecord> all = recent_spans();
  std::vector<SlowTrace> out;
  out.reserve(roots.size());
  for (const SlowRoot& root : roots) {
    SlowTrace st;
    st.trace_id = root.trace_id;
    st.root_duration_ns = root.duration_ns;
    for (const SpanRecord& rec : all) {
      if (rec.trace_id == root.trace_id) st.spans.push_back(rec);
    }
    out.push_back(std::move(st));
  }
  return out;
}

JsonValue Tracer::slow_traces_json() const {
  JsonArray traces;
  for (const SlowTrace& st : slow_traces()) {
    JsonArray spans;
    for (const SpanRecord& rec : st.spans) spans.push_back(rec.to_json());
    traces.push_back(json_object({
        {"trace_id", JsonValue(st.trace_id)},
        {"root_duration_ns", JsonValue(st.root_duration_ns)},
        {"spans", JsonValue(std::move(spans))},
    }));
  }
  return JsonValue(std::move(traces));
}

std::uint64_t Tracer::spans_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t Tracer::spans_evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

Snapshot with_latency_quantiles(Snapshot snap) {
  static const std::pair<const char*, double> kQuantiles[] = {
      {"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}, {"p999", 0.999}};
  for (const HistogramSample& hist : snap.histograms) {
    if (hist.name != kStageHistName || hist.count == 0) continue;
    std::string stage;
    for (const auto& [k, v] : hist.labels) {
      if (k == "stage") stage = v;
    }
    for (const auto& [qname, q] : kQuantiles) {
      GaugeSample g;
      g.name = "latency_quantile_seconds";
      g.labels = {{"q", qname}, {"stage", stage}};
      g.value = sample_quantile(hist, q);
      snap.gauges.push_back(std::move(g));
    }
  }
  sort_snapshot(snap);
  return snap;
}

}  // namespace baps::obs
