// Machine-readable run reports: one stable JSON schema ("baps.report.v1")
// serializing simulation Metrics, sweep results, per-phase wall times, and a
// metrics-registry snapshot. baps_cli --metrics-out and the figure benches
// write these artifacts; tools/report_check and the test suite validate and
// recompute from them.
//
// Schema (all sections except "schema" and "tool" optional):
//   {
//     "schema": "baps.report.v1",
//     "tool": "baps_cli",
//     "title": "...",
//     "args": ["--preset", "bu95", ...],
//     "trace": {"name", "requests", "clients", "docs", "total_bytes"},
//     "phases": [{"name", "seconds", "count"}, ...],
//     "sweep": [{"relative_cache_size", "orgs": [{"org", "metrics"}]}, ...],
//     "client_scaling": [{"client_fraction", "num_clients",
//                         "browsers_aware", "proxy_and_local",
//                         "hit_ratio_increment_pct", ...}, ...],
//     "registry": {"counters": [...], "gauges": [...], "histograms": [...]}
//   }
// Metrics objects carry exact integer counters next to derived ratios so a
// reader can recompute and cross-check every ratio.
#pragma once

#include <string>
#include <vector>

#include "core/runner.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "sim/metrics.hpp"
#include "trace/record.hpp"

namespace baps::obs {

inline constexpr const char* kReportSchema = "baps.report.v1";

/// Full serialization of one simulation's Metrics: counters exact, derived
/// ratios alongside.
JsonValue metrics_to_json(const sim::Metrics& m);

/// One sweep entry per point, one metrics object per organization.
JsonValue sweep_to_json(const std::vector<core::CacheSizePoint>& points);

JsonValue client_scaling_to_json(
    const std::vector<core::ClientScalingPoint>& points);

/// Accumulates report sections and writes the schema above.
class ReportBuilder {
 public:
  explicit ReportBuilder(std::string tool);

  ReportBuilder& set_title(std::string title);
  ReportBuilder& set_args(int argc, char** argv);
  ReportBuilder& set_trace(const trace::Trace& t);
  ReportBuilder& add_phases(const PhaseTimers& phases);
  ReportBuilder& add_sweep(const std::vector<core::CacheSizePoint>& points);
  /// Appends scaling points (repeat calls accumulate one flat array). A
  /// non-empty `trace_label` tags each entry with a "trace" key so
  /// multi-trace benches stay distinguishable.
  ReportBuilder& add_client_scaling(
      const std::vector<core::ClientScalingPoint>& points,
      const std::string& trace_label = "");
  ReportBuilder& set_registry(const Snapshot& snapshot);

  JsonValue build() const;

  /// Serializes build() to `path` (pretty-printed). Returns false and fills
  /// *error on I/O failure.
  bool write(const std::string& path, std::string* error = nullptr) const;

 private:
  JsonValue doc_;
};

/// Structural validation of a parsed report against baps.report.v1: schema
/// id, section shapes, and internal consistency of every metrics object
/// (counts sum to totals, ratios match their counters). Returns true when
/// valid; otherwise fills *error with the first violation.
bool validate_report(const JsonValue& report, std::string* error = nullptr);

/// Family checks for the transport counters in a report's registry section:
/// every `wire_frames_total` / `wire_bytes_total` instance must carry a
/// `dir` label of "tx" or "rx", every counter value must be a non-negative
/// number, and per direction the byte total must be at least the frame
/// header size times the frame total (a frame can never cost fewer bytes
/// than its header). Reports without a registry or without wire counters
/// pass trivially.
bool validate_transport_metrics(const JsonValue& report,
                                std::string* error = nullptr);

/// Family check for the replay-throughput gauges bench_replay publishes:
/// every `replay_requests_per_second` gauge in the registry section must
/// carry a non-empty `org` label and a finite, strictly positive value.
/// Reports without a registry or without replay gauges pass trivially.
bool validate_replay_metrics(const JsonValue& report,
                             std::string* error = nullptr);

/// Family checks for the fault-injection counters: every
/// `fault_injected_total` / `fault_recovered_total` instance must carry a
/// non-empty `kind` label and a non-negative numeric value, per kind the
/// recovered total must not exceed the injected total, and
/// `stale_index_hits_total` must be non-negative. Reports without a registry
/// or without fault counters pass trivially.
bool validate_fault_metrics(const JsonValue& report,
                            std::string* error = nullptr);

/// Family checks for the tracing counters/histograms: every
/// `trace_spans_total` instance must carry a non-empty `kind` label and a
/// non-negative value, and every `trace_stage_seconds` histogram must carry
/// a non-empty `stage` label with a non-negative observation count. Reports
/// without a registry or without trace instruments pass trivially.
bool validate_trace_metrics(const JsonValue& report,
                            std::string* error = nullptr);

/// Family checks for derived latency gauges (`latency_quantile_seconds`,
/// `replay_latency_quantile_seconds`): each instance must carry a `q` label
/// in {p50, p95, p99, p999} plus a family-specific scope label (`stage` for
/// latency_quantile_seconds, `org` for the replay family), every value must
/// be finite and non-negative, and within one scope the quantiles must be
/// monotone non-decreasing in q (p50 <= p95 <= p99 <= p999 where present).
/// Reports without a registry or without latency gauges pass trivially.
bool validate_latency_metrics(const JsonValue& report,
                              std::string* error = nullptr);

/// Family checks for the durable-store instruments: every `store_*` counter
/// must be a non-negative number, `store_bytes_total` must carry a `dir`
/// label of "read" or "written", every `store_stage_seconds` histogram must
/// carry a non-empty `op` label with a non-negative count, and summed across
/// instances `store_hits_total + store_misses_total` must equal
/// `store_probes_total` (every disk probe resolves to exactly one of the
/// two). Reports without a registry or without store instruments pass
/// trivially.
bool validate_store_metrics(const JsonValue& report,
                            std::string* error = nullptr);

/// Family checks for the sharded-replay counters: every labeled
/// `shard_requests_total` instance needs non-empty `org` and `shard`
/// labels, every labeled `shard_merged_requests_total` a non-empty `org`,
/// all values non-negative, and per organization the shard counters must
/// sum EXACTLY to the merged total — the counter half of the sharded
/// engine's merge contract (sim/sharded_replay.hpp). Unlabeled zero-valued
/// instances (eager family registration) pass; reports without a registry
/// or without shard counters pass trivially.
bool validate_shard_metrics(const JsonValue& report,
                            std::string* error = nullptr);

/// Family checks for the event-loop and connection-load instruments: every
/// `netio_*` / `connload_*` counter and gauge must be a non-negative number,
/// every `connload_roundtrip_quantile_seconds` instance needs a `q` label of
/// p50/p99/p999 with all three present together and monotone non-decreasing
/// in q, and `connload_connections_peak` can never exceed
/// `connload_established_total`. Reports without a registry or without these
/// instruments pass trivially.
bool validate_netio_metrics(const JsonValue& report,
                            std::string* error = nullptr);

/// Checks that every `wire_*` / `netio_*` / `store_*` counter present in
/// both reports (matched by name + labels) is monotone non-decreasing from
/// `earlier` to `later` — the cross-file invariant for successive snapshots
/// of one process (store counters are cumulative across warm restarts by
/// design).
bool validate_transport_monotonicity(const JsonValue& earlier,
                                     const JsonValue& later,
                                     std::string* error = nullptr);

}  // namespace baps::obs
