#include "store/disk_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "crypto/biguint.hpp"
#include "obs/registry.hpp"
#include "store/segment.hpp"

namespace baps::store {

namespace {

constexpr std::string_view kSegmentPrefix = "seg-";
constexpr std::string_view kSegmentSuffix = ".baps";

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// "seg-00000042.baps" → 42; nullopt for anything else in the directory.
std::optional<std::uint32_t> parse_segment_id(const std::string& name) {
  if (name.size() != kSegmentPrefix.size() + 8 + kSegmentSuffix.size()) {
    return std::nullopt;
  }
  if (name.compare(0, kSegmentPrefix.size(), kSegmentPrefix) != 0) {
    return std::nullopt;
  }
  if (name.compare(name.size() - kSegmentSuffix.size(), kSegmentSuffix.size(),
                   kSegmentSuffix) != 0) {
    return std::nullopt;
  }
  std::uint32_t id = 0;
  for (std::size_t i = kSegmentPrefix.size(); i < kSegmentPrefix.size() + 8;
       ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    id = id * 10 + static_cast<std::uint32_t>(c - '0');
  }
  return id;
}

bool read_exact(int fd, char* buf, std::size_t len, std::uint64_t offset) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, buf + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_exact(int fd, const char* buf, std::size_t len,
                 std::uint64_t offset) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pwrite(fd, buf + done, len - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

obs::Counter& integrity_failures_counter() {
  return obs::Registry::global().counter("store_integrity_failures_total");
}

}  // namespace

DiskStore::DiskStore(DiskStoreConfig config) : config_(std::move(config)) {
  if (config_.segment_bytes < record_size(0, 0)) {
    config_.segment_bytes = record_size(0, 0);
  }
  if (config_.segment_bytes > config_.capacity_bytes) {
    config_.segment_bytes = config_.capacity_bytes;
  }
}

DiskStore::~DiskStore() {
  if (open_) close();
}

std::string DiskStore::segment_path(std::uint32_t id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08u.baps", id);
  return config_.dir + "/" + name;
}

DiskStore::Segment* DiskStore::find_segment(std::uint32_t id) {
  // Segments are kept in ascending id order; there are only a handful.
  auto it = std::lower_bound(
      segments_.begin(), segments_.end(), id,
      [](const Segment& s, std::uint32_t want) { return s.id < want; });
  if (it == segments_.end() || it->id != id) return nullptr;
  return &*it;
}

bool DiskStore::open(std::string* error) {
  if (open_) return true;
  // Resolve (and thereby register) the counter up front: a clean run must
  // export store_integrity_failures_total = 0, not omit it — check.sh greps
  // the report for exactly that.
  integrity_failures_counter();
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "store dir " + config_.dir + ": " + ec.message();
    }
    return false;
  }

  std::vector<std::uint32_t> ids;
  for (const auto& entry :
       std::filesystem::directory_iterator(config_.dir, ec)) {
    const auto id = parse_segment_id(entry.path().filename().string());
    if (id) ids.push_back(*id);
  }
  if (ec) {
    if (error != nullptr) {
      *error = "store dir " + config_.dir + ": " + ec.message();
    }
    return false;
  }
  std::sort(ids.begin(), ids.end());

  for (std::uint32_t id : ids) {
    const std::string path = segment_path(id);
    const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
    if (fd < 0) {
      if (error != nullptr) *error = errno_string(path.c_str());
      close();
      return false;
    }
    Segment seg;
    seg.id = id;
    seg.fd = fd;
    segments_.push_back(seg);
    if (!scan_segment(&segments_.back(), error)) {
      close();
      return false;
    }
    next_segment_id_ = id + 1;
  }

  // Empty segments carry no recoverable state; drop them rather than letting
  // crash-restart churn accumulate zero-byte files.
  for (auto it = segments_.begin(); it != segments_.end();) {
    if (it->file_bytes == 0) {
      ::close(it->fd);
      std::filesystem::remove(segment_path(it->id), ec);
      it = segments_.erase(it);
    } else {
      ++it;
    }
  }

  open_ = true;
  if (!start_segment(error)) {
    open_ = false;
    close();
    return false;
  }
  return true;
}

bool DiskStore::scan_segment(Segment* seg, std::string* error) {
  const off_t end = ::lseek(seg->fd, 0, SEEK_END);
  if (end < 0) {
    if (error != nullptr) *error = errno_string("lseek");
    return false;
  }
  std::string bytes(static_cast<std::size_t>(end), '\0');
  if (!bytes.empty() && !read_exact(seg->fd, bytes.data(), bytes.size(), 0)) {
    if (error != nullptr) *error = errno_string("read segment");
    return false;
  }

  std::uint64_t offset = 0;
  std::uint64_t keep = 0;  // everything before this offset is structurally ok
  struct Parsed {
    Key key;
    std::uint64_t generation;
    std::uint32_t offset;
    std::uint32_t length;
  };
  std::vector<Parsed> records;
  while (offset < bytes.size()) {
    const std::string_view rest = std::string_view(bytes).substr(offset);
    if (rest.size() < kRecordHeaderSize) {
      // A short tail is the classic torn append: pwrite crashed before the
      // header finished.
      ++stats_.truncated_tails;
      break;
    }
    const auto header = decode_record_header(rest);
    if (!header) {
      // Full header bytes present but invalid — damage, not a torn append.
      ++stats_.truncated_tails;
      ++stats_.integrity_failures;
      integrity_failures_counter().inc();
      break;
    }
    const std::uint64_t size = record_size(header->body_len, header->mark_len);
    if (rest.size() < size) {
      ++stats_.truncated_tails;
      break;
    }
    const bool is_final = offset + size == bytes.size();
    if (is_final && !verify_record(rest.substr(0, size))) {
      // The final record claims to be complete but its watermark fails: a
      // crash landed exactly on a plausible length. Truncate it away.
      ++stats_.truncated_tails;
      ++stats_.integrity_failures;
      integrity_failures_counter().inc();
      break;
    }
    records.push_back(Parsed{header->key, header->generation,
                             static_cast<std::uint32_t>(offset),
                             static_cast<std::uint32_t>(size)});
    offset += size;
    keep = offset;
  }

  if (keep < bytes.size()) {
    if (::ftruncate(seg->fd, static_cast<off_t>(keep)) != 0) {
      if (error != nullptr) *error = errno_string("ftruncate");
      return false;
    }
  }
  seg->file_bytes = keep;
  total_bytes_ += keep;

  for (const Parsed& rec : records) {
    if (rec.generation >= next_generation_) next_generation_ = rec.generation + 1;
    index_put(rec.key, IndexEntry{seg->id, rec.offset, rec.length,
                                  rec.generation});
  }
  return true;
}

void DiskStore::index_put(Key key, const IndexEntry& entry) {
  if (IndexEntry* existing = index_.find(key)) {
    if (existing->generation >= entry.generation) return;
    if (Segment* old_seg = find_segment(existing->segment_id)) {
      old_seg->live_bytes -= existing->length;
      --old_seg->live_records;
    }
    live_bytes_ -= existing->length;
    *existing = entry;
  } else {
    index_.insert(key, entry);
  }
  if (Segment* seg = find_segment(entry.segment_id)) {
    seg->live_bytes += entry.length;
    ++seg->live_records;
  }
  live_bytes_ += entry.length;
}

bool DiskStore::start_segment(std::string* error) {
  const std::uint32_t id = next_segment_id_++;
  const std::string path = segment_path(id);
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = errno_string(path.c_str());
    return false;
  }
  Segment seg;
  seg.id = id;
  seg.fd = fd;
  segments_.push_back(seg);
  ++stats_.segments_created;
  return true;
}

void DiskStore::seal_active() {
  if (segments_.empty()) return;
  ::fsync(segments_.back().fd);
  ++stats_.syncs;
}

void DiskStore::reclaim_oldest() {
  if (segments_.empty()) return;
  Segment& victim = segments_.front();
  // Walk the index and drop every entry still pointing at the victim. The
  // index has no per-segment list; a full sweep is fine at reclamation
  // granularity (segments die rarely, and the table is flat memory).
  if (victim.live_records > 0) {
    std::vector<Key> doomed;
    doomed.reserve(static_cast<std::size_t>(victim.live_records));
    index_.for_each([&](std::uint64_t key, const IndexEntry& entry) {
      if (entry.segment_id == victim.id) doomed.push_back(key);
    });
    for (Key key : doomed) {
      IndexEntry entry;
      if (index_.erase(key, &entry)) {
        live_bytes_ -= entry.length;
        ++stats_.reclaimed_records;
      }
    }
  }
  total_bytes_ -= victim.file_bytes;
  ::close(victim.fd);
  std::error_code ec;
  std::filesystem::remove(segment_path(victim.id), ec);
  segments_.erase(segments_.begin());
  ++stats_.segments_reclaimed;
}

bool DiskStore::put(Key key, const runtime::Document& doc) {
  if (!open_) return false;
  const std::vector<std::uint8_t> mark_bytes = doc.mark.signature.to_bytes();
  const std::string_view mark =
      mark_bytes.empty()
          ? std::string_view{}
          : std::string_view(reinterpret_cast<const char*>(mark_bytes.data()),
                             mark_bytes.size());
  const std::string record =
      encode_record(key, next_generation_, doc.body, mark);
  if (record.size() > config_.segment_bytes) {
    ++stats_.rejected_too_large;
    return false;
  }

  if (segments_.back().file_bytes + record.size() > config_.segment_bytes) {
    seal_active();
    std::string error;
    if (!start_segment(&error)) return false;
  }
  // Reclaim sealed segments (never the active one) until the new record fits
  // under capacity. Oldest first: FIFO at slab granularity.
  while (total_bytes_ + record.size() > config_.capacity_bytes &&
         segments_.size() > 1) {
    reclaim_oldest();
  }

  Segment& active = segments_.back();
  if (!write_exact(active.fd, record.data(), record.size(),
                   active.file_bytes)) {
    return false;
  }
  const IndexEntry entry{active.id, static_cast<std::uint32_t>(active.file_bytes),
                         static_cast<std::uint32_t>(record.size()),
                         next_generation_};
  active.file_bytes += record.size();
  total_bytes_ += record.size();
  ++next_generation_;
  index_put(key, entry);
  ++stats_.appends;
  stats_.append_bytes += record.size();
  return true;
}

DiskStore::Load DiskStore::get(Key key, runtime::Document* out) {
  if (!open_) return Load::kMiss;
  const IndexEntry* entry = index_.find(key);
  if (entry == nullptr) {
    ++stats_.misses;
    return Load::kMiss;
  }
  const IndexEntry snapshot = *entry;
  Segment* seg = find_segment(snapshot.segment_id);
  if (seg == nullptr) {
    // Should be unreachable (reclamation drops index entries), but treat a
    // dangling entry as damage rather than crash.
    quarantine(key, snapshot);
    return Load::kCorrupt;
  }
  std::string record(snapshot.length, '\0');
  if (!read_exact(seg->fd, record.data(), record.size(), snapshot.offset)) {
    quarantine(key, snapshot);
    return Load::kCorrupt;
  }
  const auto header = decode_record_header(record);
  if (!header || header->key != key ||
      header->generation != snapshot.generation ||
      record_size(header->body_len, header->mark_len) != snapshot.length ||
      !verify_record(record)) {
    quarantine(key, snapshot);
    return Load::kCorrupt;
  }
  if (out != nullptr) {
    out->body = record.substr(kRecordHeaderSize, header->body_len);
    const auto* mark_begin = reinterpret_cast<const std::uint8_t*>(
        record.data() + kRecordHeaderSize + header->body_len);
    out->mark.signature = crypto::BigUInt::from_bytes(
        std::span<const std::uint8_t>(mark_begin, header->mark_len));
  }
  ++stats_.hits;
  return Load::kHit;
}

void DiskStore::quarantine(Key key, const IndexEntry& entry) {
  if (index_.erase(key)) {
    live_bytes_ -= entry.length;
    if (Segment* seg = find_segment(entry.segment_id)) {
      seg->live_bytes -= entry.length;
      --seg->live_records;
    }
  }
  ++stats_.integrity_failures;
  integrity_failures_counter().inc();
}

bool DiskStore::erase(Key key) {
  IndexEntry entry;
  if (!index_.erase(key, &entry)) return false;
  live_bytes_ -= entry.length;
  if (Segment* seg = find_segment(entry.segment_id)) {
    seg->live_bytes -= entry.length;
    --seg->live_records;
  }
  return true;
}

void DiskStore::sync() {
  if (!open_ || segments_.empty()) return;
  ::fsync(segments_.back().fd);
  ++stats_.syncs;
}

void DiskStore::close() {
  sync();
  for (Segment& seg : segments_) {
    if (seg.fd >= 0) ::close(seg.fd);
  }
  segments_.clear();
  index_.clear();
  live_bytes_ = 0;
  total_bytes_ = 0;
  next_generation_ = 1;
  next_segment_id_ = 0;
  open_ = false;
}

bool DiskStore::reopen(std::string* error) {
  // Deliberately NO sync: model the process dying mid-flight. Closing the
  // descriptors does not flush anything the kernel has not already taken.
  for (Segment& seg : segments_) {
    if (seg.fd >= 0) ::close(seg.fd);
  }
  segments_.clear();
  index_.clear();
  live_bytes_ = 0;
  total_bytes_ = 0;
  next_generation_ = 1;
  next_segment_id_ = 0;
  open_ = false;
  return open(error);
}

std::vector<DiskStore::Key> DiskStore::keys() const {
  std::vector<Key> out;
  out.reserve(index_.size());
  index_.for_each(
      [&out](std::uint64_t key, const IndexEntry&) { out.push_back(key); });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace baps::store
