#include "store/tiered_store.hpp"

#include "obs/registry.hpp"
#include "obs/timer.hpp"

namespace baps::store {

namespace {

// Same log10 domain as trace_stage_seconds so stage timings across the
// report line up on one axis.
constexpr double kStageLo = -7.0;
constexpr double kStageHi = 3.0;
constexpr std::size_t kStageBuckets = 50;

obs::Histogram& stage_hist(const char* op) {
  return obs::Registry::global().histogram("store_stage_seconds", kStageLo,
                                           kStageHi, kStageBuckets,
                                           obs::HistScale::kLog10,
                                           {{"op", op}});
}

std::uint64_t doc_bytes(const runtime::Document& doc) {
  return doc.body.size();
}

}  // namespace

TieredObjectStore::TieredObjectStore(const Params& params)
    : ram_(params.ram_bytes) {
  if (!params.disk.dir.empty()) {
    disk_ = std::make_unique<DiskStore>(params.disk);
    // Demotion hook: a RAM capacity eviction hands the dying document to the
    // disk tier. Installed only when the tier exists, so the store-off path
    // keeps DocStore's no-listener fast path (and its metrics silence).
    ram_.set_eviction_listener(
        [this](Key key, const runtime::Document& doc) { demote(key, doc); });
  }
}

bool TieredObjectStore::open(std::string* error) {
  if (disk_ == nullptr) return true;
  return disk_->open(error);
}

void TieredObjectStore::demote(Key key, const runtime::Document& doc) {
  auto& reg = obs::Registry::global();
  const obs::ScopedTimer timer(&stage_hist("demote"));
  if (disk_->put(key, doc)) {
    reg.counter("store_demotions_total").inc();
    reg.counter("store_bytes_total", {{"dir", "written"}}).inc(doc_bytes(doc));
  }
}

std::optional<runtime::Document> TieredObjectStore::get(Key key) {
  if (auto doc = ram_.get(key)) return doc;
  if (disk_ == nullptr) return std::nullopt;

  auto& reg = obs::Registry::global();
  reg.counter("store_probes_total").inc();
  runtime::Document doc;
  DiskStore::Load load = DiskStore::Load::kMiss;
  {
    const obs::ScopedTimer timer(&stage_hist("probe"));
    load = disk_->get(key, &doc);
  }
  if (load != DiskStore::Load::kHit) {
    // kCorrupt quarantined inside DiskStore; either way nothing was served.
    reg.counter("store_misses_total").inc();
    return std::nullopt;
  }
  reg.counter("store_hits_total").inc();
  reg.counter("store_bytes_total", {{"dir", "read"}}).inc(doc_bytes(doc));
  {
    // Promote so the next access is a RAM hit. The insertion may evict the
    // RAM LRU tail, which demotes in turn — one hop, no recursion.
    const obs::ScopedTimer timer(&stage_hist("promote"));
    if (ram_.put(key, doc)) {
      reg.counter("store_promotions_total").inc();
    }
  }
  return doc;
}

bool TieredObjectStore::put(Key key, runtime::Document doc) {
  if (disk_ == nullptr) return ram_.put(key, std::move(doc));
  if (ram_.put(key, doc)) return true;
  // Too large for the RAM tier: straight to disk.
  auto& reg = obs::Registry::global();
  const obs::ScopedTimer timer(&stage_hist("demote"));
  if (!disk_->put(key, doc)) return false;
  reg.counter("store_demotions_total").inc();
  reg.counter("store_bytes_total", {{"dir", "written"}}).inc(doc_bytes(doc));
  return true;
}

bool TieredObjectStore::contains(Key key) const {
  if (ram_.contains(key)) return true;
  return disk_ != nullptr && disk_->contains(key);
}

bool TieredObjectStore::erase(Key key) {
  const bool from_ram = ram_.erase(key);
  const bool from_disk = disk_ != nullptr && disk_->erase(key);
  return from_ram || from_disk;
}

void TieredObjectStore::sync() {
  if (disk_ != nullptr) disk_->sync();
}

bool TieredObjectStore::restart(std::string* error) {
  // clear() (not erase) loses the RAM tier without firing demotions: a
  // crashing proxy writes nothing on its way down.
  ram_.clear();
  if (disk_ == nullptr) return true;
  return disk_->reopen(error);
}

void register_store_metric_families() {
  auto& reg = obs::Registry::global();
  reg.counter("store_probes_total");
  reg.counter("store_hits_total");
  reg.counter("store_misses_total");
  reg.counter("store_demotions_total");
  reg.counter("store_promotions_total");
  reg.counter("store_bytes_total", {{"dir", "read"}});
  reg.counter("store_bytes_total", {{"dir", "written"}});
  reg.counter("store_integrity_failures_total");
  stage_hist("probe");
  stage_hist("demote");
  stage_hist("promote");
}

}  // namespace baps::store
