// On-disk record format of the durable proxy-cache tier (DESIGN.md §14).
//
// A segment file is a pure append-only sequence of records; a record is a
// fixed 32-byte header, the document body, the proxy's RSA watermark
// signature bytes, and a 16-byte MD5 storage watermark computed over
// everything before it. The header alone is enough to walk a segment
// (lengths are explicit), so reopening a store is one sequential header scan
// per segment; the MD5 watermark is what load-time verification and
// torn-tail detection check, so no corrupted record is ever served.
//
// All integers are little-endian. The format is versioned through the magic
// word: readers reject records whose magic they do not recognize, which
// doubles as the "scan hit garbage" signal that truncates a damaged tail.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "crypto/md5.hpp"

namespace baps::store {

/// Record magic, "BPS1" on disk. Bump the trailing digit on layout changes.
inline constexpr std::uint32_t kRecordMagic = 0x31535042;

/// magic u32 | body_len u32 | mark_len u32 | reserved u32 | key u64 |
/// generation u64.
inline constexpr std::size_t kRecordHeaderSize = 32;
inline constexpr std::size_t kRecordDigestSize = 16;

struct RecordHeader {
  std::uint64_t key = 0;
  std::uint64_t generation = 0;
  std::uint32_t body_len = 0;
  std::uint32_t mark_len = 0;
};

/// Total on-disk footprint of a record with these payload lengths.
inline std::uint64_t record_size(std::uint64_t body_len,
                                 std::uint64_t mark_len) {
  return kRecordHeaderSize + body_len + mark_len + kRecordDigestSize;
}

/// Serializes one record: header, body, watermark signature bytes, then the
/// MD5 storage watermark over all preceding bytes.
std::string encode_record(std::uint64_t key, std::uint64_t generation,
                          std::string_view body, std::string_view mark);

/// Parses a header from at least kRecordHeaderSize bytes. nullopt when the
/// magic does not match or the reserved word is nonzero — the caller treats
/// the rest of the segment as unreachable damage.
std::optional<RecordHeader> decode_record_header(std::string_view bytes);

/// Verifies the trailing MD5 watermark of a complete record (header
/// included). `record` must be exactly record_size(...) bytes long.
bool verify_record(std::string_view record);

}  // namespace baps::store
