// Two-tier object store behind the runtime proxy: the in-RAM DocStore LRU in
// front, the durable DiskStore slab log behind it (DESIGN.md §14).
//
// Tier movement policy:
//  * a RAM capacity eviction DEMOTES the document — the evicted body is
//    appended to the disk tier instead of vanishing;
//  * a disk hit PROMOTES the document back into RAM (which may in turn
//    demote whatever that insertion evicts);
//  * a document too large for RAM goes straight to disk.
//
// With no disk directory configured the class degrades to exactly the RAM
// DocStore it wraps: no disk I/O, and — deliberately — not a single metrics
// registry touch, so a store-off run's report is byte-identical to one from
// a build that never had a disk tier.
//
// Disk-tier traffic publishes to Registry::global():
//   store_probes_total / store_hits_total / store_misses_total
//     (hits + misses == probes; a quarantined-corrupt load counts as a miss
//      — the object was not served),
//   store_demotions_total / store_promotions_total,
//   store_bytes_total{dir=read|written},
//   store_stage_seconds{op=probe|demote|promote} (log10 histograms, same
//     domain as trace_stage_seconds),
// plus store_integrity_failures_total bumped inside DiskStore itself.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "runtime/doc_store.hpp"
#include "store/disk_store.hpp"

namespace baps::store {

class TieredObjectStore {
 public:
  using Key = runtime::DocStore::Key;

  struct Params {
    std::uint64_t ram_bytes = 256 << 10;
    /// disk.dir empty ⇒ no disk tier (pure RAM passthrough).
    DiskStoreConfig disk;
  };

  explicit TieredObjectStore(const Params& params);

  bool disk_enabled() const { return disk_ != nullptr; }

  /// Opens the disk tier (scan + index rebuild). True immediately when the
  /// disk tier is off.
  bool open(std::string* error);

  /// RAM first (LRU-touching), then the disk probe; a disk hit is promoted
  /// into RAM before returning. nullopt on a full miss — including a
  /// quarantined-corrupt disk record, which is never served.
  std::optional<runtime::Document> get(Key key);

  /// Into RAM; an oversized document falls through to the disk tier. False
  /// only if no tier can hold it.
  bool put(Key key, runtime::Document doc);

  bool contains(Key key) const;
  bool erase(Key key);

  /// Durability point for the disk tier (no-op when off).
  void sync();

  /// Crash/warm-restart: RAM contents are lost (no demotions fire — a crash
  /// sends no messages), then the disk tier reopens and rebuilds its index
  /// from the segment files. That surviving index IS the warm start.
  bool restart(std::string* error);

  runtime::DocStore& ram() { return ram_; }
  const runtime::DocStore& ram() const { return ram_; }
  /// nullptr when the disk tier is off.
  DiskStore* disk() { return disk_.get(); }
  const DiskStore* disk() const { return disk_.get(); }

 private:
  void demote(Key key, const runtime::Document& doc);

  runtime::DocStore ram_;
  std::unique_ptr<DiskStore> disk_;
};

/// Eagerly materializes every store_* instrument — probes/hits/misses/
/// demotions/promotions, store_bytes_total{dir=read|written},
/// store_integrity_failures_total, and the store_stage_seconds{op}
/// histograms — zero-valued in the global registry. Keeps the report_check
/// hits + misses == probes and dir-label invariants intact (zeros satisfy
/// both) while making first-interval time-series deltas complete.
void register_store_metric_families();

}  // namespace baps::store
