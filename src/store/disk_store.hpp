// Disk tier of the proxy cache: append-only slab segment files plus a flat
// in-RAM index (DESIGN.md §14).
//
// Documents are appended to the active segment as watermarked records
// (store/segment.hpp); the index maps key → (segment, offset, length,
// generation) and is rebuilt by scanning segment headers when a store opens,
// so a restarted proxy warm-starts from whatever survived on disk. Reads are
// pread() at the indexed offset, and every read re-verifies the record's MD5
// storage watermark — a record that fails is quarantined (dropped from the
// index, counted, never returned). A crash mid-append loses at most the tail
// record of the active segment: the open-time scan detects it by length or
// checksum and truncates it away.
//
// Capacity is reclaimed at segment granularity, oldest sealed segment first:
// the disk tier is a cache, so dropping a slab's surviving records is an
// eviction, not data loss. Single-threaded like the ProxyCore that owns it
// (the daemon serializes requests under one mutex).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/doc_store.hpp"
#include "util/flat_map.hpp"

namespace baps::store {

struct DiskStoreConfig {
  std::string dir;
  std::uint64_t capacity_bytes = 64ULL << 20;
  /// A segment seals (fsync + new active segment) once it holds this many
  /// bytes; also the largest record the store accepts. Clamped to
  /// capacity_bytes.
  std::uint64_t segment_bytes = 4ULL << 20;
};

/// Cumulative event counters, never reset by reopen() — the deltas across a
/// crash/restart are exactly what the recovery tests assert on.
struct DiskStoreStats {
  std::uint64_t appends = 0;
  std::uint64_t append_bytes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Records dropped because their storage watermark failed: at load time or
  /// by the open-time scan (bad header mid-segment, checksum-failed tail).
  std::uint64_t integrity_failures = 0;
  /// Torn tails truncated by the open-time scan (a subset of recoveries,
  /// not of integrity_failures: a clean shutdown never produces one).
  std::uint64_t truncated_tails = 0;
  std::uint64_t segments_created = 0;
  std::uint64_t segments_reclaimed = 0;
  std::uint64_t reclaimed_records = 0;
  std::uint64_t rejected_too_large = 0;
  std::uint64_t syncs = 0;
};

class DiskStore {
 public:
  using Key = runtime::DocStore::Key;

  enum class Load : std::uint8_t {
    kHit,      ///< record read and watermark-verified
    kMiss,     ///< key not indexed
    kCorrupt,  ///< record damaged on disk; quarantined, nothing returned
  };

  explicit DiskStore(DiskStoreConfig config);
  ~DiskStore();
  DiskStore(const DiskStore&) = delete;
  DiskStore& operator=(const DiskStore&) = delete;

  /// Creates the directory if needed, scans every segment's record headers
  /// to rebuild the index (newest generation wins), truncates a torn tail,
  /// and opens an active segment. False (with *error) on I/O failure.
  bool open(std::string* error);

  /// fsync + close. The store is unusable until open()ed again.
  void close();

  /// Crash-restart simulation and warm start in one: drops every in-RAM
  /// structure (index, segment table) without a clean sync, then open()s
  /// again so the index is rebuilt purely from what the files say.
  bool reopen(std::string* error);

  bool is_open() const { return open_; }

  /// pread + verify. kCorrupt quarantines the record (index drop) so a
  /// damaged object is returned to no caller, ever; intact records are
  /// unaffected.
  Load get(Key key, runtime::Document* out);

  bool contains(Key key) const { return index_.contains(key); }

  /// Appends a record for `key`, superseding any older generation, sealing
  /// the active segment and reclaiming the oldest segments as capacity
  /// demands. False if the record alone exceeds the segment size.
  bool put(Key key, const runtime::Document& doc);

  /// Drops the index entry (the record's bytes stay until its segment is
  /// reclaimed). False if absent.
  bool erase(Key key);

  /// fsyncs the active segment — the explicit durability point.
  void sync();

  std::size_t count() const { return index_.size(); }
  /// Bytes of indexed (servable) records.
  std::uint64_t live_bytes() const { return live_bytes_; }
  /// Bytes of segment files on disk, stale records included.
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::size_t segment_count() const { return segments_.size(); }
  std::uint64_t capacity_bytes() const { return config_.capacity_bytes; }
  const DiskStoreStats& stats() const { return stats_; }
  const std::string& dir() const { return config_.dir; }

  /// Every indexed key, sorted (FlatMap iterates in table order; recovery
  /// tests need determinism).
  std::vector<Key> keys() const;

 private:
  struct IndexEntry {
    std::uint32_t segment_id = 0;
    std::uint32_t offset = 0;
    std::uint32_t length = 0;  ///< full record footprint on disk
    std::uint64_t generation = 0;
  };

  struct Segment {
    std::uint32_t id = 0;
    int fd = -1;
    std::uint64_t file_bytes = 0;
    std::uint64_t live_bytes = 0;
    std::uint64_t live_records = 0;
  };

  std::string segment_path(std::uint32_t id) const;
  Segment* find_segment(std::uint32_t id);
  bool scan_segment(Segment* seg, std::string* error);
  bool start_segment(std::string* error);
  void seal_active();
  void reclaim_oldest();
  void quarantine(Key key, const IndexEntry& entry);
  /// Replaces/creates the index entry for key, keeping live accounting.
  void index_put(Key key, const IndexEntry& entry);

  DiskStoreConfig config_;
  bool open_ = false;
  std::vector<Segment> segments_;  ///< ascending id; back() is active
  util::FlatMap<IndexEntry> index_;
  std::uint64_t live_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t next_generation_ = 1;
  std::uint32_t next_segment_id_ = 0;
  DiskStoreStats stats_;
};

}  // namespace baps::store
