#include "store/segment.hpp"

#include <cstring>

namespace baps::store {

namespace {

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

}  // namespace

std::string encode_record(std::uint64_t key, std::uint64_t generation,
                          std::string_view body, std::string_view mark) {
  std::string out;
  out.reserve(record_size(body.size(), mark.size()));
  put_u32(&out, kRecordMagic);
  put_u32(&out, static_cast<std::uint32_t>(body.size()));
  put_u32(&out, static_cast<std::uint32_t>(mark.size()));
  put_u32(&out, 0);  // reserved
  put_u64(&out, key);
  put_u64(&out, generation);
  out.append(body);
  out.append(mark);
  const crypto::Md5Digest digest = crypto::md5(out);
  out.append(reinterpret_cast<const char*>(digest.bytes.data()),
             digest.bytes.size());
  return out;
}

std::optional<RecordHeader> decode_record_header(std::string_view bytes) {
  if (bytes.size() < kRecordHeaderSize) return std::nullopt;
  const char* p = bytes.data();
  if (get_u32(p) != kRecordMagic) return std::nullopt;
  if (get_u32(p + 12) != 0) return std::nullopt;  // reserved must be zero
  RecordHeader h;
  h.body_len = get_u32(p + 4);
  h.mark_len = get_u32(p + 8);
  h.key = get_u64(p + 16);
  h.generation = get_u64(p + 24);
  return h;
}

bool verify_record(std::string_view record) {
  if (record.size() < kRecordHeaderSize + kRecordDigestSize) return false;
  const std::size_t payload = record.size() - kRecordDigestSize;
  const crypto::Md5Digest digest = crypto::md5(record.substr(0, payload));
  return std::memcmp(digest.bytes.data(), record.data() + payload,
                     kRecordDigestSize) == 0;
}

}  // namespace baps::store
