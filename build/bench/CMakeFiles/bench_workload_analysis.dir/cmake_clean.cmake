file(REMOVE_RECURSE
  "CMakeFiles/bench_workload_analysis.dir/bench_workload_analysis.cpp.o"
  "CMakeFiles/bench_workload_analysis.dir/bench_workload_analysis.cpp.o.d"
  "bench_workload_analysis"
  "bench_workload_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
