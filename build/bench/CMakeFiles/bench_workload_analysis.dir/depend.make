# Empty dependencies file for bench_workload_analysis.
# This may be replaced when dependencies are built.
