file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_tier.dir/bench_memory_tier.cpp.o"
  "CMakeFiles/bench_memory_tier.dir/bench_memory_tier.cpp.o.d"
  "bench_memory_tier"
  "bench_memory_tier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
