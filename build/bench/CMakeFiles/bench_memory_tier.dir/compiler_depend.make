# Empty compiler generated dependencies file for bench_memory_tier.
# This may be replaced when dependencies are built.
