file(REMOVE_RECURSE
  "CMakeFiles/bench_ttl.dir/bench_ttl.cpp.o"
  "CMakeFiles/bench_ttl.dir/bench_ttl.cpp.o.d"
  "bench_ttl"
  "bench_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
