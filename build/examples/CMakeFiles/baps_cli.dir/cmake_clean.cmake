file(REMOVE_RECURSE
  "CMakeFiles/baps_cli.dir/baps_cli.cpp.o"
  "CMakeFiles/baps_cli.dir/baps_cli.cpp.o.d"
  "baps_cli"
  "baps_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baps_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
