# Empty dependencies file for baps_cli.
# This may be replaced when dependencies are built.
