file(REMOVE_RECURSE
  "CMakeFiles/campus_cache_study.dir/campus_cache_study.cpp.o"
  "CMakeFiles/campus_cache_study.dir/campus_cache_study.cpp.o.d"
  "campus_cache_study"
  "campus_cache_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_cache_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
