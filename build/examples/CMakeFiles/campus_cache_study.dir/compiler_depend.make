# Empty compiler generated dependencies file for campus_cache_study.
# This may be replaced when dependencies are built.
