
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache/expiring_cache_test.cpp" "tests/CMakeFiles/test_cache.dir/cache/expiring_cache_test.cpp.o" "gcc" "tests/CMakeFiles/test_cache.dir/cache/expiring_cache_test.cpp.o.d"
  "/root/repo/tests/cache/object_cache_test.cpp" "tests/CMakeFiles/test_cache.dir/cache/object_cache_test.cpp.o" "gcc" "tests/CMakeFiles/test_cache.dir/cache/object_cache_test.cpp.o.d"
  "/root/repo/tests/cache/policy_test.cpp" "tests/CMakeFiles/test_cache.dir/cache/policy_test.cpp.o" "gcc" "tests/CMakeFiles/test_cache.dir/cache/policy_test.cpp.o.d"
  "/root/repo/tests/cache/switched_cache_test.cpp" "tests/CMakeFiles/test_cache.dir/cache/switched_cache_test.cpp.o" "gcc" "tests/CMakeFiles/test_cache.dir/cache/switched_cache_test.cpp.o.d"
  "/root/repo/tests/cache/tiered_cache_test.cpp" "tests/CMakeFiles/test_cache.dir/cache/tiered_cache_test.cpp.o" "gcc" "tests/CMakeFiles/test_cache.dir/cache/tiered_cache_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/baps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
