file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/hierarchy_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/hierarchy_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/lan_model_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/lan_model_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/latency_model_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/latency_model_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/metrics_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/metrics_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/org_policy_matrix_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/org_policy_matrix_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/organization_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/organization_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/ttl_study_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/ttl_study_test.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
