
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/hierarchy_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/hierarchy_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/hierarchy_test.cpp.o.d"
  "/root/repo/tests/sim/lan_model_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/lan_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/lan_model_test.cpp.o.d"
  "/root/repo/tests/sim/latency_model_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/latency_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/latency_model_test.cpp.o.d"
  "/root/repo/tests/sim/metrics_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/metrics_test.cpp.o.d"
  "/root/repo/tests/sim/org_policy_matrix_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/org_policy_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/org_policy_matrix_test.cpp.o.d"
  "/root/repo/tests/sim/organization_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/organization_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/organization_test.cpp.o.d"
  "/root/repo/tests/sim/ttl_study_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/ttl_study_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/ttl_study_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/baps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
