
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/analysis_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/analysis_test.cpp.o.d"
  "/root/repo/tests/trace/binary_io_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/binary_io_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/binary_io_test.cpp.o.d"
  "/root/repo/tests/trace/generator_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/generator_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/generator_test.cpp.o.d"
  "/root/repo/tests/trace/log_parser_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/log_parser_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/log_parser_test.cpp.o.d"
  "/root/repo/tests/trace/presets_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/presets_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/presets_test.cpp.o.d"
  "/root/repo/tests/trace/size_model_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/size_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/size_model_test.cpp.o.d"
  "/root/repo/tests/trace/stats_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/stats_test.cpp.o.d"
  "/root/repo/tests/trace/zipf_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/zipf_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/zipf_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/baps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
