file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/trace/analysis_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/analysis_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/binary_io_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/binary_io_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/generator_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/generator_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/log_parser_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/log_parser_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/presets_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/presets_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/size_model_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/size_model_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/stats_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/stats_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/zipf_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/zipf_test.cpp.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
