
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/biguint_test.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/biguint_test.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/biguint_test.cpp.o.d"
  "/root/repo/tests/crypto/des_test.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/des_test.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/des_test.cpp.o.d"
  "/root/repo/tests/crypto/hmac_test.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/hmac_test.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/hmac_test.cpp.o.d"
  "/root/repo/tests/crypto/md5_test.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/md5_test.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/md5_test.cpp.o.d"
  "/root/repo/tests/crypto/rsa_test.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/rsa_test.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/rsa_test.cpp.o.d"
  "/root/repo/tests/crypto/watermark_test.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/watermark_test.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/watermark_test.cpp.o.d"
  "/root/repo/tests/crypto/xtea_test.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/xtea_test.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/xtea_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/baps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
