file(REMOVE_RECURSE
  "CMakeFiles/test_crypto.dir/crypto/biguint_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/biguint_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/des_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/des_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/hmac_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/hmac_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/md5_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/md5_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/rsa_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/rsa_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/watermark_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/watermark_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/xtea_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/xtea_test.cpp.o.d"
  "test_crypto"
  "test_crypto.pdb"
  "test_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
