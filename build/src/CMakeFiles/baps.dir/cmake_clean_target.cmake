file(REMOVE_RECURSE
  "libbaps.a"
)
