# Empty compiler generated dependencies file for baps.
# This may be replaced when dependencies are built.
