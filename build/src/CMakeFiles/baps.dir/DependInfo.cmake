
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/expiring_cache.cpp" "src/CMakeFiles/baps.dir/cache/expiring_cache.cpp.o" "gcc" "src/CMakeFiles/baps.dir/cache/expiring_cache.cpp.o.d"
  "/root/repo/src/cache/fifo.cpp" "src/CMakeFiles/baps.dir/cache/fifo.cpp.o" "gcc" "src/CMakeFiles/baps.dir/cache/fifo.cpp.o.d"
  "/root/repo/src/cache/gdsf.cpp" "src/CMakeFiles/baps.dir/cache/gdsf.cpp.o" "gcc" "src/CMakeFiles/baps.dir/cache/gdsf.cpp.o.d"
  "/root/repo/src/cache/lfu.cpp" "src/CMakeFiles/baps.dir/cache/lfu.cpp.o" "gcc" "src/CMakeFiles/baps.dir/cache/lfu.cpp.o.d"
  "/root/repo/src/cache/lru.cpp" "src/CMakeFiles/baps.dir/cache/lru.cpp.o" "gcc" "src/CMakeFiles/baps.dir/cache/lru.cpp.o.d"
  "/root/repo/src/cache/object_cache.cpp" "src/CMakeFiles/baps.dir/cache/object_cache.cpp.o" "gcc" "src/CMakeFiles/baps.dir/cache/object_cache.cpp.o.d"
  "/root/repo/src/cache/policy.cpp" "src/CMakeFiles/baps.dir/cache/policy.cpp.o" "gcc" "src/CMakeFiles/baps.dir/cache/policy.cpp.o.d"
  "/root/repo/src/cache/size_policy.cpp" "src/CMakeFiles/baps.dir/cache/size_policy.cpp.o" "gcc" "src/CMakeFiles/baps.dir/cache/size_policy.cpp.o.d"
  "/root/repo/src/cache/switched_cache.cpp" "src/CMakeFiles/baps.dir/cache/switched_cache.cpp.o" "gcc" "src/CMakeFiles/baps.dir/cache/switched_cache.cpp.o.d"
  "/root/repo/src/cache/tiered_cache.cpp" "src/CMakeFiles/baps.dir/cache/tiered_cache.cpp.o" "gcc" "src/CMakeFiles/baps.dir/cache/tiered_cache.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/CMakeFiles/baps.dir/core/runner.cpp.o" "gcc" "src/CMakeFiles/baps.dir/core/runner.cpp.o.d"
  "/root/repo/src/crypto/biguint.cpp" "src/CMakeFiles/baps.dir/crypto/biguint.cpp.o" "gcc" "src/CMakeFiles/baps.dir/crypto/biguint.cpp.o.d"
  "/root/repo/src/crypto/des.cpp" "src/CMakeFiles/baps.dir/crypto/des.cpp.o" "gcc" "src/CMakeFiles/baps.dir/crypto/des.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/baps.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/baps.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/md5.cpp" "src/CMakeFiles/baps.dir/crypto/md5.cpp.o" "gcc" "src/CMakeFiles/baps.dir/crypto/md5.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/CMakeFiles/baps.dir/crypto/rsa.cpp.o" "gcc" "src/CMakeFiles/baps.dir/crypto/rsa.cpp.o.d"
  "/root/repo/src/crypto/watermark.cpp" "src/CMakeFiles/baps.dir/crypto/watermark.cpp.o" "gcc" "src/CMakeFiles/baps.dir/crypto/watermark.cpp.o.d"
  "/root/repo/src/crypto/xtea.cpp" "src/CMakeFiles/baps.dir/crypto/xtea.cpp.o" "gcc" "src/CMakeFiles/baps.dir/crypto/xtea.cpp.o.d"
  "/root/repo/src/index/bloom.cpp" "src/CMakeFiles/baps.dir/index/bloom.cpp.o" "gcc" "src/CMakeFiles/baps.dir/index/bloom.cpp.o.d"
  "/root/repo/src/index/browser_index.cpp" "src/CMakeFiles/baps.dir/index/browser_index.cpp.o" "gcc" "src/CMakeFiles/baps.dir/index/browser_index.cpp.o.d"
  "/root/repo/src/index/footprint.cpp" "src/CMakeFiles/baps.dir/index/footprint.cpp.o" "gcc" "src/CMakeFiles/baps.dir/index/footprint.cpp.o.d"
  "/root/repo/src/index/summary_index.cpp" "src/CMakeFiles/baps.dir/index/summary_index.cpp.o" "gcc" "src/CMakeFiles/baps.dir/index/summary_index.cpp.o.d"
  "/root/repo/src/index/update_protocol.cpp" "src/CMakeFiles/baps.dir/index/update_protocol.cpp.o" "gcc" "src/CMakeFiles/baps.dir/index/update_protocol.cpp.o.d"
  "/root/repo/src/index/url_table.cpp" "src/CMakeFiles/baps.dir/index/url_table.cpp.o" "gcc" "src/CMakeFiles/baps.dir/index/url_table.cpp.o.d"
  "/root/repo/src/net/lan_model.cpp" "src/CMakeFiles/baps.dir/net/lan_model.cpp.o" "gcc" "src/CMakeFiles/baps.dir/net/lan_model.cpp.o.d"
  "/root/repo/src/runtime/doc_store.cpp" "src/CMakeFiles/baps.dir/runtime/doc_store.cpp.o" "gcc" "src/CMakeFiles/baps.dir/runtime/doc_store.cpp.o.d"
  "/root/repo/src/runtime/onion.cpp" "src/CMakeFiles/baps.dir/runtime/onion.cpp.o" "gcc" "src/CMakeFiles/baps.dir/runtime/onion.cpp.o.d"
  "/root/repo/src/runtime/origin.cpp" "src/CMakeFiles/baps.dir/runtime/origin.cpp.o" "gcc" "src/CMakeFiles/baps.dir/runtime/origin.cpp.o.d"
  "/root/repo/src/runtime/system.cpp" "src/CMakeFiles/baps.dir/runtime/system.cpp.o" "gcc" "src/CMakeFiles/baps.dir/runtime/system.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/CMakeFiles/baps.dir/sim/config.cpp.o" "gcc" "src/CMakeFiles/baps.dir/sim/config.cpp.o.d"
  "/root/repo/src/sim/hierarchy.cpp" "src/CMakeFiles/baps.dir/sim/hierarchy.cpp.o" "gcc" "src/CMakeFiles/baps.dir/sim/hierarchy.cpp.o.d"
  "/root/repo/src/sim/latency_model.cpp" "src/CMakeFiles/baps.dir/sim/latency_model.cpp.o" "gcc" "src/CMakeFiles/baps.dir/sim/latency_model.cpp.o.d"
  "/root/repo/src/sim/organization.cpp" "src/CMakeFiles/baps.dir/sim/organization.cpp.o" "gcc" "src/CMakeFiles/baps.dir/sim/organization.cpp.o.d"
  "/root/repo/src/sim/orgs.cpp" "src/CMakeFiles/baps.dir/sim/orgs.cpp.o" "gcc" "src/CMakeFiles/baps.dir/sim/orgs.cpp.o.d"
  "/root/repo/src/sim/ttl_study.cpp" "src/CMakeFiles/baps.dir/sim/ttl_study.cpp.o" "gcc" "src/CMakeFiles/baps.dir/sim/ttl_study.cpp.o.d"
  "/root/repo/src/trace/analysis.cpp" "src/CMakeFiles/baps.dir/trace/analysis.cpp.o" "gcc" "src/CMakeFiles/baps.dir/trace/analysis.cpp.o.d"
  "/root/repo/src/trace/binary_io.cpp" "src/CMakeFiles/baps.dir/trace/binary_io.cpp.o" "gcc" "src/CMakeFiles/baps.dir/trace/binary_io.cpp.o.d"
  "/root/repo/src/trace/generator.cpp" "src/CMakeFiles/baps.dir/trace/generator.cpp.o" "gcc" "src/CMakeFiles/baps.dir/trace/generator.cpp.o.d"
  "/root/repo/src/trace/log_parser.cpp" "src/CMakeFiles/baps.dir/trace/log_parser.cpp.o" "gcc" "src/CMakeFiles/baps.dir/trace/log_parser.cpp.o.d"
  "/root/repo/src/trace/presets.cpp" "src/CMakeFiles/baps.dir/trace/presets.cpp.o" "gcc" "src/CMakeFiles/baps.dir/trace/presets.cpp.o.d"
  "/root/repo/src/trace/record.cpp" "src/CMakeFiles/baps.dir/trace/record.cpp.o" "gcc" "src/CMakeFiles/baps.dir/trace/record.cpp.o.d"
  "/root/repo/src/trace/size_model.cpp" "src/CMakeFiles/baps.dir/trace/size_model.cpp.o" "gcc" "src/CMakeFiles/baps.dir/trace/size_model.cpp.o.d"
  "/root/repo/src/trace/stats.cpp" "src/CMakeFiles/baps.dir/trace/stats.cpp.o" "gcc" "src/CMakeFiles/baps.dir/trace/stats.cpp.o.d"
  "/root/repo/src/trace/zipf.cpp" "src/CMakeFiles/baps.dir/trace/zipf.cpp.o" "gcc" "src/CMakeFiles/baps.dir/trace/zipf.cpp.o.d"
  "/root/repo/src/util/assert.cpp" "src/CMakeFiles/baps.dir/util/assert.cpp.o" "gcc" "src/CMakeFiles/baps.dir/util/assert.cpp.o.d"
  "/root/repo/src/util/hex.cpp" "src/CMakeFiles/baps.dir/util/hex.cpp.o" "gcc" "src/CMakeFiles/baps.dir/util/hex.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/baps.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/baps.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/baps.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/baps.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/baps.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/baps.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
