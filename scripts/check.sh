#!/usr/bin/env bash
# One-shot gate: configure, build, run the test suite, then exercise the
# observability pipeline end to end — run a small bench with --metrics-out
# and validate the emitted baps.report.v1 JSON with report_check.
#
# Usage: scripts/check.sh [build-dir]   (default: build)
# Env:   BAPS_SANITIZE=address scripts/check.sh build-asan
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  ${BAPS_SANITIZE:+-DBAPS_SANITIZE="$BAPS_SANITIZE"}
cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

REPORT="$BUILD_DIR/check_fig2_report.json"
"$BUILD_DIR/bench/bench_fig2" --scale 0.05 --csv --metrics-out "$REPORT" \
  > /dev/null
"$BUILD_DIR/tools/report_check" "$REPORT"

echo "check.sh: all good"
