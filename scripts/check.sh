#!/usr/bin/env bash
# One-shot gate: configure, build, run the test suite, then exercise the
# observability pipeline end to end — run a small bench with --metrics-out
# and validate the emitted baps.report.v1 JSON with report_check.
#
# Usage: scripts/check.sh [build-dir]   (default: build)
# Env:   BAPS_SANITIZE=address scripts/check.sh build-asan
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  ${BAPS_SANITIZE:+-DBAPS_SANITIZE="$BAPS_SANITIZE"}
cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

REPORT="$BUILD_DIR/check_fig2_report.json"
"$BUILD_DIR/bench/bench_fig2" --scale 0.05 --csv --metrics-out "$REPORT" \
  > /dev/null
"$BUILD_DIR/tools/report_check" "$REPORT"

# Loopback daemon smoke test: a real baps_proxyd on an ephemeral port, a
# 200-request trace slice over TCP and the same slice in-process — the
# per-request outcome streams must be byte-identical.
PROXYD_LOG="$BUILD_DIR/check_proxyd.log"
"$BUILD_DIR/tools/baps_proxyd" --port 0 --clients 8 --seed 11 \
  --max-seconds 120 > "$PROXYD_LOG" 2>&1 &
PROXYD_PID=$!
trap 'kill "$PROXYD_PID" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
  PROXY_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$PROXYD_LOG")
  [ -n "$PROXY_PORT" ] && break
  sleep 0.1
done
[ -n "$PROXY_PORT" ] || { echo "proxyd never came up"; cat "$PROXYD_LOG"; exit 1; }
"$BUILD_DIR/tools/baps_fetch" --transport tcp --port "$PROXY_PORT" \
  --clients 8 --seed 11 --preset bu95 --requests 200 \
  --sources-out "$BUILD_DIR/check_tcp_sources.txt" > /dev/null 2>&1
"$BUILD_DIR/tools/baps_fetch" --transport loopback \
  --clients 8 --seed 11 --preset bu95 --requests 200 \
  --sources-out "$BUILD_DIR/check_loop_sources.txt" > /dev/null 2>&1
diff "$BUILD_DIR/check_tcp_sources.txt" "$BUILD_DIR/check_loop_sources.txt"
kill "$PROXYD_PID" 2>/dev/null || true
wait "$PROXYD_PID" 2>/dev/null || true
trap - EXIT
echo "check.sh: tcp/loopback sources identical (200 requests)"

# Tracing smoke: run the same daemon with sampling at 1.0 on both sides, then
# assert the two span logs stitch — shared trace ids whose parent links all
# resolve across the client/proxy process boundary — and that the live STATS
# endpoint serves a baps.trace_stats.v1 snapshot while the daemon is up.
PROXYD_LOG="$BUILD_DIR/check_trace_proxyd.log"
PROXY_SPANS="$BUILD_DIR/check_trace_proxy_spans.jsonl"
CLIENT_SPANS="$BUILD_DIR/check_trace_client_spans.jsonl"
"$BUILD_DIR/tools/baps_proxyd" --port 0 --clients 8 --seed 11 \
  --trace-sample 1.0 --trace-out "$PROXY_SPANS" \
  --max-seconds 120 > "$PROXYD_LOG" 2>&1 &
PROXYD_PID=$!
trap 'kill "$PROXYD_PID" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
  PROXY_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$PROXYD_LOG")
  [ -n "$PROXY_PORT" ] && break
  sleep 0.1
done
[ -n "$PROXY_PORT" ] || { echo "traced proxyd never came up"; cat "$PROXYD_LOG"; exit 1; }
"$BUILD_DIR/tools/baps_fetch" --transport tcp --port "$PROXY_PORT" \
  --clients 8 --seed 11 --preset bu95 --requests 200 \
  --trace-sample 1.0 --trace-out "$CLIENT_SPANS" > /dev/null 2>&1
STATS=$("$BUILD_DIR/tools/baps_fetch" --transport tcp --port "$PROXY_PORT" \
  --stats)
echo "$STATS" | grep -q '"schema": *"baps.trace_stats.v1"' \
  || { echo "STATS snapshot missing schema"; echo "$STATS"; exit 1; }
kill "$PROXYD_PID" 2>/dev/null || true
wait "$PROXYD_PID" 2>/dev/null || true
trap - EXIT
"$BUILD_DIR/tools/trace_check" --min-shared 100 \
  "$CLIENT_SPANS" "$PROXY_SPANS"
echo "check.sh: traced tcp run stitched across client and proxyd"

# Seeded fault smoke: a loopback run with every fault kind enabled must
# serve all requests correctly (--fault-strict: verified == requests and
# recovered == injected), and the emitted report's fault_* counter families
# must validate. The shrunken caches push traffic onto the peer path so the
# frame/disconnect/slow kinds actually fire, not just the churn kinds.
FAULT_REPORT="$BUILD_DIR/check_fault_report.json"
"$BUILD_DIR/tools/baps_fetch" --transport loopback --clients 8 --seed 11 \
  --preset bu95 --requests 1500 --proxy-cache 16384 --browser-cache 32768 \
  --fault-seed 42 \
  --fault-rates "disconnect=0.1,depart=0.02,join=0.5,slow=0.1,drop=0.08,corrupt=0.08,restart=0.002,slow_budget_ms=25" \
  --fault-strict --metrics-out "$FAULT_REPORT" > /dev/null 2>&1
"$BUILD_DIR/tools/report_check" "$FAULT_REPORT"
echo "check.sh: seeded fault run fully recovered (1500 requests)"

# Crash-recovery smoke: the same seeded loopback run with proxy restarts,
# once cold (RAM only) and once warm (--store-dir). The durable tier must
# recover proxy hits the restarts destroy, and must never serve a damaged
# object (store_integrity_failures_total stays 0 in the emitted report).
STORE_DIR="$BUILD_DIR/check_store"
STORE_REPORT="$BUILD_DIR/check_store_report.json"
rm -rf "$STORE_DIR"
COLD_HITS=$("$BUILD_DIR/tools/baps_fetch" --transport loopback --clients 8 \
  --seed 11 --preset bu95 --requests 1200 \
  --proxy-cache 16384 --browser-cache 4096 \
  --fault-seed 42 --fault-rates "restart=0.01" 2>/dev/null \
  | sed -n 's/.*proxy_hits=\([0-9]*\).*/\1/p')
WARM_HITS=$("$BUILD_DIR/tools/baps_fetch" --transport loopback --clients 8 \
  --seed 11 --preset bu95 --requests 1200 \
  --proxy-cache 16384 --browser-cache 4096 \
  --fault-seed 42 --fault-rates "restart=0.01" \
  --store-dir "$STORE_DIR" --store-capacity 64m \
  --metrics-out "$STORE_REPORT" 2>/dev/null \
  | sed -n 's/.*proxy_hits=\([0-9]*\).*/\1/p')
[ -n "$COLD_HITS" ] && [ -n "$WARM_HITS" ] \
  || { echo "store smoke: could not parse proxy_hits"; exit 1; }
[ "$WARM_HITS" -gt "$COLD_HITS" ] \
  || { echo "store smoke: warm restart did not recover hits" \
       "(warm=$WARM_HITS cold=$COLD_HITS)"; exit 1; }
"$BUILD_DIR/tools/report_check" "$STORE_REPORT"
grep -A2 '"store_integrity_failures_total"' "$STORE_REPORT" \
  | grep -q '"value": 0' \
  || { echo "store smoke: integrity failures reported"; exit 1; }
echo "check.sh: warm restart recovered hits (warm=$WARM_HITS cold=$COLD_HITS, 0 integrity failures)"

# Sharded-replay smoke: the multi-core engine must reproduce the unsharded
# replay byte for byte — --shard-differential runs N=1 on the pressured
# config and N=1/N=4 on an eviction-free config against the classic engine
# and exits nonzero on any metric mismatch. The emitted report carries the
# shard_* counter families, which report_check cross-sums (per organization,
# sum(shard_requests_total) must equal shard_merged_requests_total).
SHARD_REPORT="$BUILD_DIR/check_shard_report.json"
"$BUILD_DIR/bench/bench_replay" --scale 0.05 --reps 1 --shards 1,4 \
  --shard-differential --metrics-out "$SHARD_REPORT" > /dev/null
"$BUILD_DIR/tools/report_check" "$SHARD_REPORT"
echo "check.sh: sharded replay (N=4) bit-identical to unsharded, shard sums validated"

# Time-series smoke: a daemon sampling at 250ms streams baps.timeseries.v1
# JSONL while serving traffic; baps_top polls a live window over the wire
# (TimeSeriesRequest frame) and must render per-interval rates; after
# shutdown the exported stream must pass the cross-record validator
# (validated only once the daemon is dead — the last line is whole then).
TS_LOG="$BUILD_DIR/check_ts_proxyd.log"
TS_OUT="$BUILD_DIR/check_ts.jsonl"
"$BUILD_DIR/tools/baps_proxyd" --port 0 --clients 8 --seed 11 \
  --ts-interval 250ms --ts-out "$TS_OUT" \
  --max-seconds 120 > "$TS_LOG" 2>&1 &
PROXYD_PID=$!
trap 'kill "$PROXYD_PID" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
  PROXY_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$TS_LOG")
  [ -n "$PROXY_PORT" ] && break
  sleep 0.1
done
[ -n "$PROXY_PORT" ] || { echo "ts proxyd never came up"; cat "$TS_LOG"; exit 1; }
"$BUILD_DIR/tools/baps_fetch" --transport tcp --port "$PROXY_PORT" \
  --clients 8 --seed 11 --preset bu95 --requests 500 > /dev/null 2>&1
sleep 0.6  # let at least two post-traffic intervals land in the ring
TOP=$("$BUILD_DIR/tools/baps_top" --port "$PROXY_PORT" --plain --iterations 1)
echo "$TOP" | grep -q 'requests .*\/s' \
  || { echo "baps_top rendered no request rate"; echo "$TOP"; exit 1; }
echo "$TOP" | grep -q 'hit ratio' \
  || { echo "baps_top rendered no hit ratio"; echo "$TOP"; exit 1; }
kill "$PROXYD_PID" 2>/dev/null || true
wait "$PROXYD_PID" 2>/dev/null || true
trap - EXIT
"$BUILD_DIR/tools/report_check" --timeseries "$TS_OUT"
echo "check.sh: live baps_top frame rendered, time-series stream validated"

# Event-loop smoke: an --event-driven daemon must serve the same 200-request
# slice with byte-identical per-request outcomes (the epoll differential at
# shell level), and bench_connload must hold 2000 concurrent connections
# through it with valid quantile gauges in its report. 2000 keeps the smoke
# inside default fd limits; the 10k headline run is the same commands with
# --connections 10000 (see README).
EPOLL_LOG="$BUILD_DIR/check_epoll_proxyd.log"
CONNLOAD_REPORT="$BUILD_DIR/check_connload_report.json"
"$BUILD_DIR/tools/baps_proxyd" --port 0 --clients 8 --seed 11 \
  --event-driven --max-seconds 120 > "$EPOLL_LOG" 2>&1 &
PROXYD_PID=$!
trap 'kill "$PROXYD_PID" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
  PROXY_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$EPOLL_LOG")
  [ -n "$PROXY_PORT" ] && break
  sleep 0.1
done
[ -n "$PROXY_PORT" ] || { echo "epoll proxyd never came up"; cat "$EPOLL_LOG"; exit 1; }
"$BUILD_DIR/tools/baps_fetch" --transport tcp --port "$PROXY_PORT" \
  --clients 8 --seed 11 --preset bu95 --requests 200 \
  --sources-out "$BUILD_DIR/check_epoll_sources.txt" > /dev/null 2>&1
diff "$BUILD_DIR/check_epoll_sources.txt" "$BUILD_DIR/check_loop_sources.txt"
"$BUILD_DIR/bench/bench_connload" --port "$PROXY_PORT" --connections 2000 \
  --min-peak 2000 --metrics-out "$CONNLOAD_REPORT" > /dev/null
kill "$PROXYD_PID" 2>/dev/null || true
wait "$PROXYD_PID" 2>/dev/null || true
trap - EXIT
"$BUILD_DIR/tools/report_check" "$CONNLOAD_REPORT"
echo "check.sh: epoll daemon matched loopback sources; 2000-conn load validated"

# Perf-gate smoke: report_diff must pass a report against itself and against
# the committed hotpath history, and — the self-test that makes its green
# trustworthy — must FAIL when a 75% regression is seeded into the
# comparison.
DIFF_REPORT="$BUILD_DIR/check_diff_report.json"
"$BUILD_DIR/bench/bench_replay" --scale 0.05 --reps 1 \
  --metrics-out "$DIFF_REPORT" > /dev/null
"$BUILD_DIR/tools/report_diff" "$DIFF_REPORT" "$DIFF_REPORT" > /dev/null
"$BUILD_DIR/tools/report_diff" BENCH_hotpath.json "$DIFF_REPORT" \
  --tolerance 60 > /dev/null
if "$BUILD_DIR/tools/report_diff" BENCH_hotpath.json "$DIFF_REPORT" \
  --tolerance 60 --inject-regression 75 > /dev/null 2>&1; then
  echo "report_diff failed to fail on a seeded 75% regression"; exit 1
fi
echo "check.sh: report_diff gate passes clean and trips on a seeded regression"

echo "check.sh: all good"
