// Secure sharing walkthrough: drives the runtime protocol engine through the
// paper's §6 scenarios — a peer-served document with an integrity watermark,
// a tampering peer being caught and recovered from, and an audit of the
// message trace demonstrating requester/holder anonymity.
#include <iostream>

#include "core/api.hpp"
#include "runtime/onion.hpp"
#include "runtime/system.hpp"

int main() {
  using namespace baps;

  runtime::BapsSystem::Params params;
  params.num_clients = 4;
  params.proxy_cache_bytes = 8 << 10;  // deliberately small proxy
  params.browser_cache_bytes = 64 << 10;
  params.seed = 99;
  runtime::BapsSystem sys(params);

  const runtime::Url page = "http://news.example/frontpage.html";

  std::cout << "== 1. Alice (client0) fetches the page ==\n";
  auto out = sys.browse(0, page);
  std::cout << "served from " << runtime::source_name(out.source)
            << ", watermark verified: " << (out.verified ? "yes" : "no")
            << "\n\n";

  std::cout << "== 2. Churn evicts it from the tiny proxy cache ==\n";
  for (int i = 0; i < 40; ++i) {
    sys.browse(3, "http://filler.example/" + std::to_string(i));
  }
  std::cout << "proxy cache flushed; Alice's browser still holds the page\n\n";

  std::cout << "== 3. Bob (client1) requests the same page ==\n";
  sys.messages().clear();
  out = sys.browse(1, page);
  std::cout << "served from " << runtime::source_name(out.source)
            << " (peer-to-peer!), verified: " << (out.verified ? "yes" : "no")
            << "\n\nMessage audit (what each party could observe):\n";
  for (const runtime::MsgRecord& m : sys.messages().log()) {
    std::cout << "  " << m.from << " -> " << m.to << " : "
              << runtime::msg_kind_name(m.kind) << "\n";
  }
  std::cout << "Note: the peer-fetch to Alice names only the proxy — she "
               "never learns that\nBob asked; Bob never learns the copy came "
               "from Alice (§6.2).\n\n";

  std::cout << "== 4. Mallory (client2) caches the page, then turns "
               "malicious ==\n";
  sys.browse(2, page);
  // Make Mallory the only indexed holder: Alice's and Bob's browsers churn
  // through other content until their copies are honestly evicted (each
  // eviction sends the §2 invalidation message to the proxy's index).
  for (int i = 0; i < 120; ++i) {
    sys.browse(0, "http://alice.example/" + std::to_string(i));
    sys.browse(1, "http://bob.example/" + std::to_string(i));
  }
  for (int i = 40; i < 80; ++i) {
    sys.browse(3, "http://filler.example/" + std::to_string(i));
  }
  sys.set_tampering(2, true);

  std::cout << "== 5. Carol (client3) requests the page ==\n";
  out = sys.browse(3, page);
  std::cout << "tampering detected and recovered: "
            << (out.tamper_recovered ? "yes" : "no") << "; final copy from "
            << runtime::source_name(out.source)
            << ", verified: " << (out.verified ? "yes" : "no") << "\n";
  std::cout << "total tamper detections: " << sys.tamper_detections()
            << ", false forwards: " << sys.false_forwards() << "\n\n";
  std::cout << "No client can forge the proxy's RSA watermark, so corrupted "
               "peer copies are\nalways caught at the requester and re-served "
               "from the origin (§6.1).\n\n";

  std::cout << "== 6. Decentralized anonymity: a layered (onion) path ==\n";
  // The paper's ref [17] variant: no proxy in the loop. Dave routes a
  // request through two relays; each relay peels one layer and learns only
  // its neighbors.
  std::vector<runtime::RelayKeys> path;
  std::vector<crypto::RsaPrivateKey> privs;
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto kp = crypto::generate_rsa_keypair(256, 7000 + i);
    path.push_back(runtime::RelayKeys{i, kp.pub});
    privs.push_back(kp.priv);
  }
  const std::string payload = "GET http://news.example/frontpage.html";
  auto blob = runtime::build_onion(
      path, std::vector<std::uint8_t>(payload.begin(), payload.end()), 42);
  for (std::size_t hop = 0; hop < path.size(); ++hop) {
    const auto peeled = runtime::peel_onion(blob, privs[hop]);
    if (!peeled) {
      std::cout << "relay " << hop << " dropped the message\n";
      return 1;
    }
    if (peeled->next) {
      std::cout << "relay " << hop << " forwards to relay " << *peeled->next
                << " (learns nothing else)\n";
    } else {
      std::cout << "exit relay " << hop << " recovers the request: \""
                << std::string(peeled->blob.begin(), peeled->blob.end())
                << "\"\n";
    }
    blob = peeled->blob;
  }
  return 0;
}
