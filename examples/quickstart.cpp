// Quickstart: simulate the five web-caching organizations of the paper on a
// bundled workload preset and print their hit ratios.
//
//   $ ./examples/quickstart
//
// This is the ~30-line tour of the public API: load a trace, compute its
// statistics, build a RunSpec, run organizations, read Metrics.
#include <iostream>

#include "core/api.hpp"

int main() {
  using namespace baps;

  // A scaled-down NLANR-uc stand-in (see DESIGN.md §2 for the workload
  // model); drop the factor argument for the full Table-1-scale trace.
  const trace::Trace t =
      trace::load_preset_scaled(trace::Preset::kNlanrUc, 0.25);
  const trace::TraceStats stats = trace::compute_stats(t);

  std::cout << "Trace: " << t.name() << " — " << stats.num_requests
            << " requests from " << stats.num_clients << " clients, "
            << format_bytes(stats.total_bytes) << " total\n\n";

  core::RunSpec spec;
  spec.relative_cache_size = 0.10;  // proxy = 10% of the infinite cache size
  spec.sizing = core::BrowserSizing::kMinimum;

  Table table({"Organization", "Hit Ratio", "Byte Hit Ratio",
               "Remote Browser Hits"});
  for (const sim::OrgKind org : sim::kAllOrganizations) {
    const sim::Metrics m = core::run_one(org, t, stats, spec);
    table.row()
        .cell(sim::org_name(org))
        .cell_percent(m.hit_ratio())
        .cell_percent(m.byte_hit_ratio())
        .cell(m.remote_browser_hits);
  }
  std::cout << table;
  std::cout << "\nThe browsers-aware proxy server turns documents parked in "
               "other clients'\nbrowser caches into hits that every other "
               "organization misses.\n";
  return 0;
}
