// Campus capacity study: a university lab is sizing the proxy cache for a
// department of ~60 machines and wants to know (a) how much disk buys how
// much hit ratio and (b) whether enabling browsers-aware peer sharing is
// worth the deployment effort at each size.
//
// Demonstrates: building a custom workload with GeneratorParams, cache-size
// sweeps on a thread pool, and exporting the trace for external tools.
#include <fstream>
#include <iostream>

#include "core/api.hpp"

int main() {
  using namespace baps;

  // A campus-shaped workload: moderate population, strong shared locality
  // (course pages, department sites), bursty sessions.
  trace::GeneratorParams params;
  params.num_requests = 120'000;
  params.num_clients = 60;
  params.shared_docs = 40'000;
  params.private_docs_per_client = 1'000;
  params.shared_alpha = 0.82;
  params.shared_prob = 0.70;
  params.temporal_prob = 0.28;
  params.session_mean_requests = 50.0;
  const trace::Trace t = trace::generate_trace("campus", params, 2026);
  const trace::TraceStats stats = trace::compute_stats(t);

  std::cout << "Campus workload: " << stats.num_requests << " requests, "
            << format_bytes(stats.total_bytes) << " moved, infinite cache "
            << format_bytes(stats.infinite_cache_bytes) << ", max hit ratio "
            << 100.0 * stats.max_hit_ratio << "%\n\n";

  core::RunSpec spec;
  spec.sizing = core::BrowserSizing::kAverage;
  ThreadPool pool;
  const std::vector<double> sizes = {0.01, 0.02, 0.05, 0.10, 0.20, 0.40};
  const auto points = core::sweep_cache_sizes(
      t, sizes,
      {core::OrgKind::kProxyAndLocalBrowser, core::OrgKind::kBrowsersAware},
      spec, &pool);

  Table table({"Proxy Disk", "Hierarchy Hit", "BAPS Hit", "Gain (pts)",
               "Hierarchy Byte Hit", "BAPS Byte Hit"});
  for (const auto& p : points) {
    const auto& pal = p.by_org.at(core::OrgKind::kProxyAndLocalBrowser);
    const auto& aware = p.by_org.at(core::OrgKind::kBrowsersAware);
    table.row()
        .cell(format_bytes(sim::proxy_cache_bytes_for(
            stats, p.relative_cache_size)))
        .cell_percent(pal.hit_ratio())
        .cell_percent(aware.hit_ratio())
        .cell(100.0 * (aware.hit_ratio() - pal.hit_ratio()), 2)
        .cell_percent(pal.byte_hit_ratio())
        .cell_percent(aware.byte_hit_ratio());
  }
  std::cout << table;
  std::cout << "\nReading: peer sharing substitutes for proxy disk — the "
               "BAPS column at each\nrow roughly matches the hierarchy "
               "column one or two rows further down.\n";

  // Export for replotting or replay through a real Squid.
  std::ofstream out("campus_trace.log");
  trace::write_plain_log(t, out);
  std::cout << "\nTrace exported to campus_trace.log ("
            << stats.num_requests << " lines, plain format).\n";
  return 0;
}
