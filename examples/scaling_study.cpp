// ISP scaling study: an access provider expects its subscriber population
// behind one proxy to quadruple. How does the browsers-aware gain scale, and
// what does it cost in LAN traffic and index maintenance?
//
// Demonstrates: client-scaling sweeps (the Figure 8 machinery), the §5
// overhead counters, and the index-footprint model.
#include <iostream>

#include "core/api.hpp"

int main() {
  using namespace baps;

  trace::GeneratorParams params;
  params.num_requests = 160'000;
  params.num_clients = 160;
  params.shared_docs = 70'000;
  params.private_docs_per_client = 900;
  params.shared_alpha = 0.76;
  params.shared_prob = 0.60;
  params.client_rate_alpha = 0.55;
  const trace::Trace t = trace::generate_trace("isp", params, 404);

  core::RunSpec spec;
  spec.relative_cache_size = 0.10;
  spec.sizing = core::BrowserSizing::kAverage;
  ThreadPool pool;

  const std::vector<double> fractions = {0.25, 0.5, 0.75, 1.0};
  const auto points = core::client_scaling_sweep(t, fractions, spec, &pool);

  Table table({"Clients", "Hierarchy Hit", "BAPS Hit", "Hit Increment",
               "LAN Comm/Service", "Index Messages", "False Forwards"});
  for (const auto& p : points) {
    table.row()
        .cell(std::uint64_t{p.num_clients})
        .cell_percent(p.proxy_and_local.hit_ratio())
        .cell_percent(p.browsers_aware.hit_ratio())
        .cell(p.hit_ratio_increment_pct, 2)
        .cell_percent(p.browsers_aware.remote_overhead_fraction(), 3)
        .cell(p.browsers_aware.index_messages)
        .cell(p.browsers_aware.false_forwards);
  }
  std::cout << "Scaling the subscriber population behind one proxy "
               "(proxy disk held fixed):\n\n"
            << table;

  // What does indexing all those browsers cost the proxy in memory?
  index::FootprintParams fp;
  fp.num_clients = t.num_clients();
  fp.browser_cache_bytes = 32ULL << 20;
  fp.avg_doc_bytes = 8ULL << 10;
  const index::FootprintEstimate est = index::estimate_footprint(fp);
  std::cout << "\nBrowser index for " << fp.num_clients << " clients with "
            << format_bytes(fp.browser_cache_bytes) << " caches: "
            << format_bytes(est.exact_index_bytes) << " exact, "
            << format_bytes(est.bloom_index_bytes)
            << " Bloom-compressed.\n";
  std::cout << "\nReading: the gain GROWS with population while LAN overhead "
               "stays far below\n1% of service time — the paper's "
               "scalability claim.\n";
  return 0;
}
