// baps_cli — command-line driver for the simulator.
//
// Run any caching organization over a preset or a real log file with full
// control of the knobs, printing a table or CSV. Examples:
//
//   baps_cli --preset nlanr-uc --size 0.10
//   baps_cli --preset bu95 --orgs baps,hierarchy --sizes 0.01,0.05,0.10
//   baps_cli --log access.log --format squid --policy gdsf --csv
//   baps_cli --preset bu98 --index periodic --threshold 0.25
//   baps_cli --preset bu95 --metrics-out report.json --progress
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/api.hpp"
#include "obs/report.hpp"

namespace {

using namespace baps;

[[noreturn]] void usage(int code) {
  std::cout <<
      "usage: baps_cli [options]\n"
      "\nworkload (pick one):\n"
      "  --preset NAME       nlanr-uc | nlanr-bo1 | bu95 | bu98 | canet2\n"
      "  --log FILE          parse a real access log\n"
      "  --format FMT        squid | plain        (default squid)\n"
      "  --scale F           shrink a preset by F in (0,1]\n"
      "\nsimulation:\n"
      "  --orgs LIST         comma list of: proxy, local, global,\n"
      "                      hierarchy, baps, all   (default all)\n"
      "  --sizes LIST        relative proxy sizes   (default 0.10)\n"
      "  --sizing MODE       min | avg              (default min)\n"
      "  --policy P          lru|fifo|lfu|size|gdsf (default lru)\n"
      "  --index MODE        immediate | periodic | bloom\n"
      "  --threshold F       periodic flush threshold (default 0.1)\n"
      "  --relay             remote hits relayed via the proxy (2 hops)\n"
      "\noutput:\n"
      "  --csv               machine-readable output\n"
      "  --overheads         include the Section 5 overhead columns\n"
      "  --metrics-out FILE  write a baps.report.v1 JSON report (sweep\n"
      "                      results, per-phase wall times, registry)\n"
      "  --progress          print sweep progress to stderr\n";
  std::exit(code);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

trace::Preset preset_by_name(const std::string& name) {
  if (name == "nlanr-uc") return trace::Preset::kNlanrUc;
  if (name == "nlanr-bo1") return trace::Preset::kNlanrBo1;
  if (name == "bu95") return trace::Preset::kBu95;
  if (name == "bu98") return trace::Preset::kBu98;
  if (name == "canet2") return trace::Preset::kCanet2;
  std::cerr << "unknown preset: " << name << "\n";
  usage(2);
}

core::OrgKind org_by_name(const std::string& name) {
  if (name == "proxy") return core::OrgKind::kProxyOnly;
  if (name == "local") return core::OrgKind::kLocalBrowserOnly;
  if (name == "global") return core::OrgKind::kGlobalBrowsersOnly;
  if (name == "hierarchy") return core::OrgKind::kProxyAndLocalBrowser;
  if (name == "baps") return core::OrgKind::kBrowsersAware;
  std::cerr << "unknown organization: " << name << "\n";
  usage(2);
}

cache::PolicyKind policy_by_name(const std::string& name) {
  if (name == "lru") return cache::PolicyKind::kLru;
  if (name == "fifo") return cache::PolicyKind::kFifo;
  if (name == "lfu") return cache::PolicyKind::kLfu;
  if (name == "size") return cache::PolicyKind::kSize;
  if (name == "gdsf") return cache::PolicyKind::kGdsf;
  std::cerr << "unknown policy: " << name << "\n";
  usage(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset_name, log_file, format = "squid";
  double scale = 1.0;
  std::vector<core::OrgKind> orgs;
  std::vector<double> sizes = {0.10};
  core::RunSpec spec;
  bool csv = false, overheads = false;
  std::string metrics_out;
  bool progress = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (a == "--preset") {
      preset_name = next();
    } else if (a == "--log") {
      log_file = next();
    } else if (a == "--format") {
      format = next();
    } else if (a == "--scale") {
      scale = std::atof(next().c_str());
    } else if (a == "--orgs") {
      for (const auto& n : split(next(), ',')) {
        if (n == "all") {
          orgs.assign(std::begin(sim::kAllOrganizations),
                      std::end(sim::kAllOrganizations));
        } else {
          orgs.push_back(org_by_name(n));
        }
      }
    } else if (a == "--sizes") {
      sizes.clear();
      for (const auto& n : split(next(), ',')) {
        sizes.push_back(std::atof(n.c_str()));
      }
    } else if (a == "--sizing") {
      const std::string m = next();
      spec.sizing = (m == "avg") ? core::BrowserSizing::kAverage
                                 : core::BrowserSizing::kMinimum;
    } else if (a == "--policy") {
      spec.policy = policy_by_name(next());
    } else if (a == "--index") {
      const std::string m = next();
      if (m == "periodic") {
        spec.index_mode = sim::IndexMode::kPeriodic;
      } else if (m == "bloom") {
        spec.index_kind = sim::IndexKind::kBloomSummary;
      } else if (m != "immediate") {
        usage(2);
      }
    } else if (a == "--threshold") {
      spec.index_threshold = std::atof(next().c_str());
    } else if (a == "--relay") {
      spec.relay_via_proxy = true;
    } else if (a == "--csv") {
      csv = true;
    } else if (a == "--overheads") {
      overheads = true;
    } else if (a == "--metrics-out") {
      metrics_out = next();
    } else if (a == "--progress") {
      progress = true;
    } else if (a == "--help" || a == "-h") {
      usage(0);
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      usage(2);
    }
  }
  if (orgs.empty()) {
    orgs.assign(std::begin(sim::kAllOrganizations),
                std::end(sim::kAllOrganizations));
  }
  if (preset_name.empty() == log_file.empty()) {
    std::cerr << "pick exactly one of --preset / --log\n";
    usage(2);
  }

  obs::PhaseTimers phases;

  trace::Trace t;
  {
    const auto load_scope = phases.scope("load_trace");
    if (!preset_name.empty()) {
      const trace::Preset preset = preset_by_name(preset_name);
      t = scale >= 1.0 ? trace::load_preset(preset)
                       : trace::load_preset_scaled(preset, scale);
    } else {
      std::ifstream in(log_file);
      if (!in) {
        std::cerr << "cannot open " << log_file << "\n";
        return 1;
      }
      const trace::ParseResult r = format == "plain"
                                       ? trace::parse_plain_log(in, log_file)
                                       : trace::parse_squid_log(in, log_file);
      std::cerr << "parsed " << r.lines_parsed << " requests ("
                << r.lines_skipped << " lines skipped)\n";
      t = std::move(r.trace);
    }
  }
  if (t.empty()) {
    std::cerr << "empty trace\n";
    return 1;
  }

  core::ProgressFn progress_fn;
  if (progress) {
    progress_fn = [](std::size_t done, std::size_t total) {
      std::cerr << "progress: " << done << "/" << total << "\n";
    };
  }

  ThreadPool pool;
  std::vector<core::CacheSizePoint> points;
  {
    const auto sweep_scope = phases.scope("sweep");
    points = core::sweep_cache_sizes(t, sizes, orgs, spec, &pool,
                                     std::move(progress_fn));
  }

  std::vector<std::string> header = {"Organization", "Rel.Size", "Hit Ratio",
                                     "Byte Hit Ratio", "Remote Hits"};
  if (overheads) {
    header.insert(header.end(), {"Comm/Service", "Contention/Comm",
                                 "Index Msgs", "False Fwds"});
  }
  Table table(header);
  for (const auto& p : points) {
    for (const core::OrgKind org : orgs) {
      const sim::Metrics& m = p.by_org.at(org);
      auto& row = table.row()
                      .cell(sim::org_name(org))
                      .cell(p.relative_cache_size, 3)
                      .cell_percent(m.hit_ratio())
                      .cell_percent(m.byte_hit_ratio())
                      .cell(m.remote_browser_hits);
      if (overheads) {
        row.cell_percent(m.remote_overhead_fraction(), 3)
            .cell_percent(m.contention_fraction_of_comm(), 3)
            .cell(m.index_messages)
            .cell(m.false_forwards);
      }
    }
  }
  std::cout << (csv ? table.to_csv() : table.to_string());

  if (!metrics_out.empty()) {
    std::string error;
    const bool ok = obs::ReportBuilder("baps_cli")
                        .set_title(preset_name.empty() ? log_file
                                                       : preset_name)
                        .set_args(argc, argv)
                        .set_trace(t)
                        .add_phases(phases)
                        .add_sweep(points)
                        .set_registry(obs::Registry::global().snapshot())
                        .write(metrics_out, &error);
    if (!ok) {
      std::cerr << "cannot write " << metrics_out << ": " << error << "\n";
      return 1;
    }
    std::cerr << "wrote " << metrics_out << "\n";
  }
  return 0;
}
