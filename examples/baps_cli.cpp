// baps_cli — command-line driver for the simulator.
//
// Run any caching organization over a preset or a real log file with full
// control of the knobs, printing a table or CSV. Examples:
//
//   baps_cli --preset nlanr-uc --size 0.10
//   baps_cli --preset bu95 --orgs baps,hierarchy --sizes 0.01,0.05,0.10
//   baps_cli --log access.log --format squid --policy gdsf --csv
//   baps_cli --preset bu98 --index periodic --threshold 0.25
//   baps_cli --preset bu95 --metrics-out report.json --progress
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>

#include "core/api.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"

namespace {

using namespace baps;

std::optional<trace::Preset> preset_by_name(const std::string& name) {
  if (name == "nlanr-uc") return trace::Preset::kNlanrUc;
  if (name == "nlanr-bo1") return trace::Preset::kNlanrBo1;
  if (name == "bu95") return trace::Preset::kBu95;
  if (name == "bu98") return trace::Preset::kBu98;
  if (name == "canet2") return trace::Preset::kCanet2;
  return std::nullopt;
}

std::optional<core::OrgKind> org_by_name(const std::string& name) {
  if (name == "proxy") return core::OrgKind::kProxyOnly;
  if (name == "local") return core::OrgKind::kLocalBrowserOnly;
  if (name == "global") return core::OrgKind::kGlobalBrowsersOnly;
  if (name == "hierarchy") return core::OrgKind::kProxyAndLocalBrowser;
  if (name == "baps") return core::OrgKind::kBrowsersAware;
  return std::nullopt;
}

std::optional<cache::PolicyKind> policy_by_name(const std::string& name) {
  if (name == "lru") return cache::PolicyKind::kLru;
  if (name == "fifo") return cache::PolicyKind::kFifo;
  if (name == "lfu") return cache::PolicyKind::kLfu;
  if (name == "size") return cache::PolicyKind::kSize;
  if (name == "gdsf") return cache::PolicyKind::kGdsf;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset_name, log_file, format = "squid";
  double scale = 1.0;
  std::vector<core::OrgKind> orgs;
  std::vector<double> sizes = {0.10};
  core::RunSpec spec;
  bool csv = false, overheads = false;
  std::string metrics_out;
  bool progress = false;
  bool relay = false;

  util::ArgParser parser(
      "baps_cli",
      "Run caching organizations over a preset or a real log file.");
  parser.option("--preset", &preset_name, "NAME",
                "nlanr-uc | nlanr-bo1 | bu95 | bu98 | canet2")
      .option("--log", &log_file, "FILE", "parse a real access log")
      .option("--format", &format, "FMT", "squid | plain (default squid)")
      .option("--scale", &scale, "F", "shrink a preset by F in (0,1]")
      .custom("--orgs", "LIST",
              "comma list of: proxy, local, global, hierarchy, baps, all",
              [&orgs](const std::string& v) {
                for (const auto& n : util::split(v, ',')) {
                  if (n == "all") {
                    orgs.assign(std::begin(sim::kAllOrganizations),
                                std::end(sim::kAllOrganizations));
                  } else if (const auto org = org_by_name(n)) {
                    orgs.push_back(*org);
                  } else {
                    return false;
                  }
                }
                return true;
              })
      .custom("--sizes", "LIST", "relative proxy sizes (default 0.10)",
              [&sizes](const std::string& v) {
                sizes.clear();
                for (const auto& n : util::split(v, ',')) {
                  double size = 0.0;
                  if (!util::parse_number(n, &size)) return false;
                  sizes.push_back(size);
                }
                return !sizes.empty();
              })
      .custom("--sizing", "MODE", "min | avg (default min)",
              [&spec](const std::string& m) {
                spec.sizing = (m == "avg") ? core::BrowserSizing::kAverage
                                           : core::BrowserSizing::kMinimum;
                return true;
              })
      .custom("--policy", "P", "lru|fifo|lfu|size|gdsf (default lru)",
              [&spec](const std::string& p) {
                const auto policy = policy_by_name(p);
                if (!policy.has_value()) return false;
                spec.policy = *policy;
                return true;
              })
      .custom("--index", "MODE", "immediate | periodic | bloom",
              [&spec](const std::string& m) {
                if (m == "periodic") {
                  spec.index_mode = sim::IndexMode::kPeriodic;
                } else if (m == "bloom") {
                  spec.index_kind = sim::IndexKind::kBloomSummary;
                } else if (m != "immediate") {
                  return false;
                }
                return true;
              })
      .option("--threshold", &spec.index_threshold, "F",
              "periodic flush threshold (default 0.1)")
      .flag("--relay", &relay, "remote hits relayed via the proxy (2 hops)")
      .flag("--csv", &csv, "machine-readable output")
      .flag("--overheads", &overheads,
            "include the Section 5 overhead columns")
      .option("--metrics-out", &metrics_out, "FILE",
              "write a baps.report.v1 JSON report")
      .flag("--progress", &progress, "print sweep progress to stderr");

  std::string parse_error;
  if (!parser.parse(argc, argv, &parse_error)) {
    std::cerr << parse_error << "\n" << parser.usage();
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }
  spec.relay_via_proxy = relay;
  if (orgs.empty()) {
    orgs.assign(std::begin(sim::kAllOrganizations),
                std::end(sim::kAllOrganizations));
  }
  if (preset_name.empty() == log_file.empty()) {
    std::cerr << "pick exactly one of --preset / --log\n" << parser.usage();
    return 2;
  }

  obs::PhaseTimers phases;

  trace::Trace t;
  {
    const auto load_scope = phases.scope("load_trace");
    if (!preset_name.empty()) {
      const auto preset = preset_by_name(preset_name);
      if (!preset.has_value()) {
        std::cerr << "unknown preset: " << preset_name << "\n";
        return 2;
      }
      t = scale >= 1.0 ? trace::load_preset(*preset)
                       : trace::load_preset_scaled(*preset, scale);
    } else {
      std::ifstream in(log_file);
      if (!in) {
        std::cerr << "cannot open " << log_file << "\n";
        return 1;
      }
      const trace::ParseResult r = format == "plain"
                                       ? trace::parse_plain_log(in, log_file)
                                       : trace::parse_squid_log(in, log_file);
      std::cerr << "parsed " << r.lines_parsed << " requests ("
                << r.lines_skipped << " lines skipped)\n";
      t = std::move(r.trace);
    }
  }
  if (t.empty()) {
    std::cerr << "empty trace\n";
    return 1;
  }

  core::ProgressFn progress_fn;
  if (progress) {
    progress_fn = [](std::size_t done, std::size_t total) {
      std::cerr << "progress: " << done << "/" << total << "\n";
    };
  }

  ThreadPool pool;
  std::vector<core::CacheSizePoint> points;
  {
    const auto sweep_scope = phases.scope("sweep");
    points = core::sweep_cache_sizes(t, sizes, orgs, spec, &pool,
                                     std::move(progress_fn));
  }

  std::vector<std::string> header = {"Organization", "Rel.Size", "Hit Ratio",
                                     "Byte Hit Ratio", "Remote Hits"};
  if (overheads) {
    header.insert(header.end(), {"Comm/Service", "Contention/Comm",
                                 "Index Msgs", "False Fwds"});
  }
  Table table(header);
  for (const auto& p : points) {
    for (const core::OrgKind org : orgs) {
      const sim::Metrics& m = p.by_org.at(org);
      auto& row = table.row()
                      .cell(sim::org_name(org))
                      .cell(p.relative_cache_size, 3)
                      .cell_percent(m.hit_ratio())
                      .cell_percent(m.byte_hit_ratio())
                      .cell(m.remote_browser_hits);
      if (overheads) {
        row.cell_percent(m.remote_overhead_fraction(), 3)
            .cell_percent(m.contention_fraction_of_comm(), 3)
            .cell(m.index_messages)
            .cell(m.false_forwards);
      }
    }
  }
  std::cout << (csv ? table.to_csv() : table.to_string());

  if (!metrics_out.empty()) {
    std::string error;
    const bool ok = obs::ReportBuilder("baps_cli")
                        .set_title(preset_name.empty() ? log_file
                                                       : preset_name)
                        .set_args(argc, argv)
                        .set_trace(t)
                        .add_phases(phases)
                        .add_sweep(points)
                        .set_registry(obs::Registry::global().snapshot())
                        .write(metrics_out, &error);
    if (!ok) {
      std::cerr << "cannot write " << metrics_out << ": " << error << "\n";
      return 1;
    }
    std::cerr << "wrote " << metrics_out << "\n";
  }
  return 0;
}
